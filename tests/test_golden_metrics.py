"""Golden simulated-metrics regression guard.

Wall-clock performance work (interned terms, tuple-row join kernels, the
simulator fast path) must never change a *simulated* result: answers,
inter-site bytes, simulated response times, and lookup hop counts are the
correctness oracle for engine-level acceleration. This test pins those
numbers for the paper's Fig. 4-9 queries (plus the DISTINCT/ASK forms)
across every (primitive strategy x conjunction mode x join-site policy)
combination, with the shipping optimizations both fully off and fully on,
against a checked-in golden file. Beyond the figure queries this also pins
pure OPTIONAL / UNION / FILTER forms (optcond / unionfilter / optchain),
so every algebra operator — not just conjunctions — is guarded through
the physical-plan layer.

The golden file was captured from the pre-optimization engine (commit
42c5621; the optcond/unionfilter/optchain rows from the pre-plan-layer
engine of PR 8); any drift — a single byte, a single hop, a float ULP of
simulated time — fails this test. To re-capture after an *intentional*
metrics change (never for a perf-only PR):

    GOLDEN_REGEN=1 PYTHONPATH=src:tests python -m pytest tests/test_golden_metrics.py
"""

import hashlib
import itertools
import json
import os
from pathlib import Path

import pytest

from repro.query import (
    ConjunctionMode,
    DistributedExecutor,
    ExecutionOptions,
    JoinSitePolicy,
    PrimitiveStrategy,
)

from helpers import build_system

GOLDEN_PATH = Path(__file__).parent / "golden" / "metrics_fig4_9.json"

QUERIES = {
    "fig4": """SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name . ?x foaf:knows ?z .
        ?x ns:knowsNothingAbout ?y . ?y foaf:knows ?z .
        FILTER regex(?name, "Smith") } ORDER BY DESC(?x)""",
    "fig5": "SELECT ?x WHERE { ?x foaf:knows ns:me . }",
    "fig6": """SELECT ?x ?y ?z WHERE {
        ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y . }""",
    "fig7": """SELECT ?x ?y WHERE {
        { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
        OPTIONAL { ?y foaf:nick "Shrek" . } }""",
    "fig8": """SELECT ?x ?y ?z WHERE {
        { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
        UNION
        { ?x foaf:mbox <mailto:abc@example.org> . ?x foaf:knows ?z . } }""",
    "fig9": """SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name ; ns:knowsNothingAbout ?y .
        FILTER regex(?name, "Smith")
        OPTIONAL { ?y foaf:knows ?z . } }""",
    "distinct": """SELECT DISTINCT ?x WHERE {
        ?x foaf:knows ?y . ?y foaf:knows ?z . }""",
    "ask": "ASK { ?x foaf:name ?name . ?x foaf:knows ?y . }",
    # Non-conjunction forms pinned explicitly so the plan layer cannot
    # drift on OPTIONAL / UNION / FILTER shapes that the Fig. 4-9 set
    # only exercises in combination: a LeftJoin carrying an embedded
    # condition, a FILTER over a UNION, and a chain of OPTIONALs.
    "optcond": """SELECT ?x ?y WHERE {
        ?x foaf:knows ?y .
        OPTIONAL { ?y foaf:name ?n . FILTER regex(?n, "Smith") } }""",
    "unionfilter": """SELECT ?x ?n WHERE {
        { ?x foaf:name ?n . } UNION { ?x foaf:nick ?n . }
        FILTER regex(?n, "S") }""",
    "optchain": """SELECT ?x ?y ?z ?w WHERE {
        ?x ns:knowsNothingAbout ?y .
        OPTIONAL { ?y foaf:knows ?z . }
        OPTIONAL { ?x foaf:name ?w . } }""",
}

COMBOS = list(itertools.product(PrimitiveStrategy, ConjunctionMode,
                                JoinSitePolicy))

TECHNIQUES = [
    ("off", dict(semijoin=False, projection_pushdown=False,
                 dictionary_encoding=False)),
    ("all", dict(semijoin=True, projection_pushdown=True,
                 dictionary_encoding=True)),
]


def answer_fingerprint(result) -> str:
    """Exact digest of the answer — row order included (it is part of the
    simulated output for ordered queries and deterministic otherwise)."""
    if result.boolean is not None:
        return f"ask:{result.boolean}"
    rows = [[(v.name, t.n3()) for v, t in mu.items()] for mu in result.rows]
    blob = json.dumps(rows, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def capture():
    """Run every pinned configuration in a fixed order on a fresh system.

    A fresh system + fixed order makes the capture self-consistent: any
    state the engine carries across queries (e.g. lookup caches) evolves
    identically at regen time and at check time.
    """
    system = build_system()
    out = {}
    for name, text in QUERIES.items():
        for strategy, mode, policy in COMBOS:
            for tech_name, techniques in TECHNIQUES:
                options = ExecutionOptions(
                    primitive_strategy=strategy,
                    conjunction_mode=mode,
                    join_site_policy=policy,
                    semijoin_min_rows=1,
                    **techniques,
                )
                executor = DistributedExecutor(system, options)
                result, report = executor.execute(text, initiator="D1")
                key = "|".join((name, strategy.value, mode.value,
                                policy.value, tech_name))
                out[key] = {
                    "response_time": report.response_time,
                    "bytes_total": report.bytes_total,
                    "messages": report.messages,
                    "lookup_hops": report.lookup_hops,
                    "result_count": report.result_count,
                    "answers": answer_fingerprint(result),
                }
    return out


def test_simulated_metrics_match_golden():
    if os.environ.get("GOLDEN_REGEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(capture(), indent=1, sort_keys=True)
                               + "\n")
        pytest.skip(f"golden file regenerated at {GOLDEN_PATH}")

    golden = json.loads(GOLDEN_PATH.read_text())
    got = capture()
    assert set(got) == set(golden), "configuration grid changed"
    drifted = {
        key: {field: (golden[key][field], got[key][field])
              for field in golden[key] if golden[key][field] != got[key][field]}
        for key in golden
        if golden[key] != got[key]
    }
    assert not drifted, (
        f"{len(drifted)} configurations drifted from golden "
        f"(golden, got): {dict(itertools.islice(drifted.items(), 5))}"
    )


def test_cache_off_leaves_cache_layer_untouched():
    """PR 9 guard: with ``result_cache`` off (the default, and what every
    golden-grid configuration runs with) the caching subsystem must do
    exactly nothing — zero probes, zero admissions, zero bytes. This is
    the structural reason the grid above cannot drift when the cache
    ships: off means *absent*, not merely cold."""
    system = build_system()
    for text in QUERIES.values():
        DistributedExecutor(system).execute(text, initiator="D1")
    counters = system.network.cache.as_dict()
    assert all(value == 0 for value in counters.values()), counters
