"""Event/mailbox lifecycle regression tests.

Two leak families fixed together with the tracing work:

1. ``Network.call`` used to leave its deadline timer live in the heap
   after the reply won the race — dragging ``sim.now`` to the deadline
   on the next ``run()`` and churning the heap. Timers are now cancelled
   (heap tombstones) by whichever racer loses.
2. After a ``DeliveryTimeout``, a late one-way ``deliver``/``delivered``
   used to land in ``QueryPeer.mailbox`` with nobody ever fetching it,
   and ``_expected`` callbacks lingered. Correlation state is now
   abandoned on timeout (dead-letter tombstones) and swept at query end.
"""

import pytest

from repro.net import Network, Node
from repro.query import DistributedExecutor, ExecutionOptions, PrimitiveStrategy
from repro.overlay.peer import QueryPeer

from helpers import build_system


class EchoNode(Node):
    def rpc_echo(self, payload, src):
        return payload


def live_heap(sim):
    pending = [*sim._heap, *sim._now_queue]
    return [entry for entry in pending if entry[2] is not None]


def peer_state(system):
    """Aggregate correlation-state sizes across every query peer."""
    mailbox = expected = early = dead = 0
    for node in system.network.nodes.values():
        if isinstance(node, QueryPeer):
            state = node.__dict__
            mailbox += len(state.get("_qp_mailbox") or ())
            expected += len(state.get("_qp_expected") or ())
            early += len(state.get("_qp_delivered_early") or ())
            dead += len(state.get("_qp_dead_corrs") or ())
    return {"mailbox": mailbox, "expected": expected, "early": early, "dead": dead}


CLEAN = {"mailbox": 0, "expected": 0, "early": 0, "dead": 0}


class TestTimerCancellation:
    def test_kernel_event_cancel(self):
        from repro.net.sim import Simulator

        sim = Simulator()
        event = sim.event()
        fired = []
        event.callbacks.append(lambda e: fired.append(e))
        assert event.cancel() is True
        assert event.cancelled
        with pytest.raises(Exception):
            event.succeed("late")  # cancelled events never trigger
        sim.run()
        assert fired == []

    def test_cancel_after_trigger_loses_race(self):
        from repro.net.sim import Simulator

        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        assert event.cancel() is False
        assert not event.cancelled

    def test_cancelled_timeout_does_not_advance_clock(self):
        from repro.net.sim import Simulator

        sim = Simulator()
        long_timer = sim.timeout(1000.0)
        sim.timeout(0.5)
        long_timer.cancel()
        assert sim.run() == pytest.approx(0.5)

    def test_rpc_reply_cancels_deadline_timer(self):
        """A successful call leaves no live deadline timer behind: the
        post-call clock is the reply time, not the (huge) deadline."""
        net = Network(default_timeout=10_000.0)
        net.register(EchoNode("a"))

        def proc():
            return (yield net.call("client", "a", "echo", "x"))

        assert net.sim.run_process(proc()) == "x"
        assert net.sim.now < 1.0
        assert live_heap(net.sim) == []

    def test_fail_fast_cancels_deadline_timer(self):
        net = Network(default_timeout=10_000.0)
        net.register(EchoNode("a"))

        def proc():
            try:
                yield net.call("client", "ghost", "echo", "x")
            except Exception:
                pass
            return net.sim.now

        assert net.sim.run_process(proc()) < 1.0
        assert live_heap(net.sim) == []

    def test_heap_returns_to_baseline_after_query(self):
        system = build_system()
        baseline = len(live_heap(system.sim))
        DistributedExecutor(system).execute(
            "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }", initiator="D1")
        assert len(live_heap(system.sim)) == baseline == 0

    def test_query_does_not_drag_clock_to_deadline(self):
        """Response time reflects the work, not the stale 5 s RPC
        deadlines the old code left in the heap."""
        system = build_system()
        _, report = DistributedExecutor(system).execute(
            "SELECT ?x WHERE { ?x foaf:knows ns:me . }", initiator="D1")
        assert report.response_time < 1.0
        assert system.sim.now < 1.0


class TestDeadCorrelations:
    def test_late_deliver_after_abandon_is_dropped(self):
        system = build_system()
        peer = system.storage_nodes["D1"]
        peer.abandon_corr("c1")
        peer.rpc_deliver({"corr": "c1", "data": [1, 2, 3]}, "D2")
        assert "c1" not in peer.mailbox
        # The tombstone survives the first late arrival: a duplicated or
        # retried send can trail in more copies, and each must be
        # dropped. purge_corrs (the executor's sweep) removes it.
        peer.rpc_deliver({"corr": "c1", "data": [4, 5]}, "D2")
        assert "c1" not in peer.mailbox
        assert "c1" in peer._dead_corrs
        assert peer.purge_corrs(["c1"]) == 1
        assert "c1" not in peer._dead_corrs

    def test_late_delivered_after_abandon_is_dropped(self):
        system = build_system()
        peer = system.storage_nodes["D1"]
        event = peer.expect("c2")
        peer.abandon_corr("c2")
        peer.rpc_delivered({"corr": "c2", "count": 7}, "D2")
        assert not event.triggered or event.cancelled
        assert "c2" not in peer._delivered_early
        # A second late copy is dropped by the same tombstone.
        peer.rpc_delivered({"corr": "c2", "count": 7}, "D2")
        assert "c2" not in peer._delivered_early
        assert "c2" in peer._dead_corrs
        assert peer.purge_corrs(["c2"]) == 1

    def test_chain_timeout_fallback_leaves_no_state(self):
        """The satellite-2 scenario: the chain's final delivery is slower
        than the delivery timeout and arrives *after* the BASIC fallback
        already re-executed. The late payload is dead-lettered instead of
        parking in a mailbox forever; the query succeeds and leaves every
        peer clean."""
        system = build_system()
        # Delay every one-way `deliver` by 100 ms — far past the 50 ms
        # delivery timeout — while chain_step and RPC traffic run at
        # normal speed, so the chain *completes* but completes late.
        real_send = system.network.send

        def slow_send(src, dst, method, payload=None):
            if method == "deliver":
                system.sim.timeout(0.1).callbacks.append(
                    lambda _e: real_send(src, dst, method, payload))
            else:
                real_send(src, dst, method, payload)

        system.network.send = slow_send
        options = ExecutionOptions(
            primitive_strategy=PrimitiveStrategy.CHAINED,
            delivery_timeout=0.05,
        )
        query = "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"
        # Initiate from an index node: it holds no data, so the chain's
        # last hop is a real message (interceptable above).
        result, report = DistributedExecutor(system, options).execute(
            query, initiator="N0")
        assert report.retries >= 1  # the chain did time out
        assert result.rows == _oracle_rows(system, query)
        assert peer_state(system) == CLEAN
        assert live_heap(system.sim) == []

    def test_hundred_query_loop_no_growth(self):
        """The ISSUE acceptance criterion: a 100-query loop leaves no
        growth in the heap, mailboxes, or pending expectations."""
        system = build_system()
        executor = DistributedExecutor(system)
        queries = [
            "SELECT ?x WHERE { ?x foaf:knows ns:me . }",
            "ASK { ?x foaf:nick ?n . }",
            """SELECT ?x ?y ?z WHERE {
                ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y . }""",
            "SELECT * WHERE { ?x foaf:name ?n . FILTER regex(?n, \"Smith\") }",
        ]
        for i in range(100):
            executor.execute(queries[i % len(queries)], initiator="D1")
            assert peer_state(system) == CLEAN, f"leak after query {i}"
        assert live_heap(system.sim) == []
        assert system.sim._heap == []

    def test_failed_query_sweeps_state(self):
        system = build_system()
        executor = DistributedExecutor(system)
        with pytest.raises(Exception):
            executor.execute(
                "SELECT ?x FROM <http://g> WHERE { ?x ?p ?o . }", initiator="D1")
        assert peer_state(system) == CLEAN


def _oracle_rows(system, query_text):
    from repro.rdf import COMMON_PREFIXES
    from repro.sparql import evaluate_query, parse_query

    query = parse_query(query_text, COMMON_PREFIXES)
    return evaluate_query(query, system.union_graph()).rows
