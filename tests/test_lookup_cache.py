"""Per-query LRU caching of two-level index consultations."""


from repro.net.sizes import HEADER_BYTES
from repro.query import DistributedExecutor
from repro.query.executor import ExecutionContext, ExecutionReport
from repro.rdf import Variable
from repro.rdf.namespaces import FOAF
from repro.rdf.triple import TriplePattern

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

#: Both patterns key the index by the same predicate, so one query
#: consults the same location-table row twice.
REPEAT_QUERY = """SELECT ?x ?z WHERE {
    ?x foaf:knows ?y . ?y foaf:knows ?z . }"""


def make_ctx(system, initiator="D1", **options):
    executor = DistributedExecutor(system, **options)
    return ExecutionContext(
        system, initiator, executor.options, ExecutionReport(), executor.load
    )


def locate(system, ctx, pattern):
    def proc():
        return (yield from ctx.locate(pattern, None))

    return system.sim.run_process(proc())


class TestWithinQuery:
    def test_repeated_pattern_hits(self, paper_system):
        executor = DistributedExecutor(paper_system)
        _, report = executor.execute(REPEAT_QUERY, initiator="D1")
        assert report.lookup_cache_hits >= 1
        assert report.lookup_cache_misses >= 1

    def test_disabled_cache_counts_nothing(self, paper_system):
        executor = DistributedExecutor(paper_system, lookup_cache_size=0)
        _, report = executor.execute(REPEAT_QUERY, initiator="D1")
        assert report.lookup_cache_hits == 0
        assert report.lookup_cache_misses == 0

    def test_results_identical_with_and_without(self, paper_system):
        on = DistributedExecutor(paper_system)
        off = DistributedExecutor(paper_system, lookup_cache_size=0)
        r_on, rep_on = on.execute(REPEAT_QUERY, initiator="D1")
        r_off, rep_off = off.execute(REPEAT_QUERY, initiator="D1")
        assert set(map(str, r_on.rows)) == set(map(str, r_off.rows))
        # A hit saves at least one round trip's envelope bytes.
        assert rep_on.bytes_total < rep_off.bytes_total
        assert rep_off.bytes_total - rep_on.bytes_total >= 2 * HEADER_BYTES

    def test_cached_locate_returns_same_entries(self, paper_system):
        ctx = make_ctx(paper_system)
        pattern = TriplePattern(X, FOAF.knows, Y)
        first = locate(paper_system, ctx, pattern)
        second = locate(paper_system, ctx, pattern)
        assert [e.storage_id for e in first.entries] == \
               [e.storage_id for e in second.entries]
        assert ctx.report.lookup_cache_hits == 1
        assert ctx.report.lookup_cache_misses == 1


class TestInvalidation:
    def test_membership_epoch_tracks_churn(self, paper_system):
        net = paper_system.network
        before = net.membership_epoch
        net.fail_node("D2")
        assert net.membership_epoch == before + 1
        net.recover_node("D2")
        assert net.membership_epoch == before + 2

    def test_churn_clears_the_cache(self, paper_system):
        ctx = make_ctx(paper_system)
        pattern = TriplePattern(X, FOAF.knows, Y)
        locate(paper_system, ctx, pattern)
        paper_system.network.fail_node("D4")
        try:
            locate(paper_system, ctx, pattern)
        finally:
            paper_system.network.recover_node("D4")
        assert ctx.report.lookup_cache_hits == 0
        assert ctx.report.lookup_cache_misses == 2

    def test_lru_evicts_oldest(self, paper_system):
        ctx = make_ctx(paper_system, lookup_cache_size=1)
        knows = TriplePattern(X, FOAF.knows, Y)
        name = TriplePattern(X, FOAF.name, Z)
        locate(paper_system, ctx, knows)
        locate(paper_system, ctx, name)   # evicts knows
        locate(paper_system, ctx, knows)  # miss again
        assert ctx.report.lookup_cache_hits == 0
        assert ctx.report.lookup_cache_misses == 3

    def test_capacity_two_keeps_both(self, paper_system):
        ctx = make_ctx(paper_system, lookup_cache_size=2)
        knows = TriplePattern(X, FOAF.knows, Y)
        name = TriplePattern(X, FOAF.name, Z)
        locate(paper_system, ctx, knows)
        locate(paper_system, ctx, name)
        locate(paper_system, ctx, knows)
        assert ctx.report.lookup_cache_hits == 1
        assert ctx.report.lookup_cache_misses == 2
