"""Metrics helpers: summaries, stats accounting, table rendering."""

import pytest

from repro.metrics import render_table, summarize
from repro.net import NetworkStats


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3
        assert s.median == 3
        assert (s.minimum, s.maximum) == (1, 5)

    def test_p95(self):
        s = summarize(range(1, 101))
        assert s.p95 == 95

    def test_percentiles(self):
        s = summarize(range(1, 101))
        assert s.p50 == 50
        assert s.p99 == 99
        # Nearest-rank: with four samples p99 is the maximum.
        s4 = summarize([10, 20, 30, 40])
        assert s4.p50 == 20
        assert s4.p95 == s4.p99 == 40

    def test_percentiles_order_insensitive(self):
        assert summarize([5, 1, 3, 2, 4]) == summarize([1, 2, 3, 4, 5])

    def test_single_value(self):
        s = summarize([7.0])
        assert s.mean == s.median == s.minimum == s.maximum == s.p95 == 7.0
        assert s.p50 == s.p99 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestNetworkStats:
    def test_record_and_reset(self):
        stats = NetworkStats()
        stats.record(0.0, "a", "b", "echo", 100)
        stats.record(1.0, "b", "a", "echo.reply", 50)
        assert stats.messages == 2
        assert stats.bytes_total == 150
        assert stats.per_kind_bytes["echo"] == 100
        assert stats.bytes_for("echo", "echo.reply") == 150
        stats.reset()
        assert stats.messages == 0 and not stats.records

    def test_keep_records_off(self):
        stats = NetworkStats(keep_records=False)
        stats.record(0.0, "a", "b", "x", 10)
        assert stats.messages == 1 and stats.records == []

    def test_summary_text(self):
        stats = NetworkStats()
        stats.record(0.0, "a", "b", "x", 10)
        assert "messages=1" in stats.summary()
        assert "x: 1 msgs, 10 bytes" in stats.summary()


class TestRenderTable:
    def test_alignment_and_formatting(self):
        text = render_table(
            ["name", "bytes", "ratio"],
            [["basic", 110578, 1.0], ["freq", 31660, 0.2863]],
            title="E1",
        )
        lines = text.splitlines()
        assert lines[0] == "E1"
        assert "name" in lines[1] and "bytes" in lines[1]
        assert "110,578" in text
        assert "0.2863" in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text
