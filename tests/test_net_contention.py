"""Unit tests for the shared-resource contention model (PR 3).

The model must satisfy two invariants the concurrency work leans on:

1. **Single-flow transparency** — a lone query (one flow) never waits
   anywhere, so a contended simulation with one query is bit-identical
   to an uncontended one.
2. **FIFO cross-flow serialization** — work of different flows through
   the same resource queues in admission order, waits summing the
   earlier foreign occupancies.
"""

import pytest

from repro.net import ContentionModel, ResourceQueue


class TestResourceQueue:
    def test_idle_queue_no_wait(self):
        q = ResourceQueue("out:a")
        assert q.admit("f1", 0.0, 0.5) == 0.0

    def test_same_flow_is_concurrent(self):
        q = ResourceQueue("out:a")
        q.admit("f1", 0.0, 0.5)
        assert q.admit("f1", 0.1, 0.5) == 0.0
        assert q.admit("f1", 0.2, 2.0) == 0.0

    def test_foreign_flow_waits_until_drain(self):
        q = ResourceQueue("out:a")
        q.admit("f1", 0.0, 0.5)
        assert q.admit("f2", 0.2, 0.1) == pytest.approx(0.3)

    def test_drained_occupancy_is_free(self):
        q = ResourceQueue("out:a")
        q.admit("f1", 0.0, 0.5)
        assert q.admit("f2", 0.6, 0.1) == 0.0

    def test_fifo_chain(self):
        """Three flows back-to-back serialize: each starts when the
        previous ones finish."""
        q = ResourceQueue("out:a")
        assert q.admit("f1", 0.0, 1.0) == 0.0
        assert q.admit("f2", 0.0, 1.0) == pytest.approx(1.0)  # starts at 1
        assert q.admit("f3", 0.0, 1.0) == pytest.approx(2.0)  # starts at 2

    def test_zero_duration_leaves_no_occupancy(self):
        q = ResourceQueue("cpu:a")
        q.admit("f1", 0.0, 0.0)
        assert q.admit("f2", 0.0, 1.0) == 0.0

    def test_same_flow_occupancy_extends_not_shrinks(self):
        q = ResourceQueue("out:a")
        q.admit("f1", 0.0, 1.0)
        q.admit("f1", 0.0, 0.1)  # shorter work must not shrink busy-until
        assert q.admit("f2", 0.0, 0.1) == pytest.approx(1.0)

    def test_stats(self):
        q = ResourceQueue("out:a")
        q.admit("f1", 0.0, 1.0)
        q.admit("f2", 0.5, 1.0)
        assert q.admissions == 2
        assert q.waits == 1
        assert q.total_wait == pytest.approx(0.5)
        assert q.max_depth == 2


class TestContentionModel:
    def test_none_flow_bypasses(self):
        model = ContentionModel()
        model._queue("out", "a").admit("f1", 0.0, 10.0)
        assert model.transfer_wait("a", "b", None, 0.0, 1.0) == 0.0
        assert model.compute_wait("a", None, 0.0, 1.0) == 0.0

    def test_single_flow_never_waits(self):
        model = ContentionModel()
        for i in range(20):
            assert model.transfer_wait("a", "b", "q0", i * 0.01, 0.5) == 0.0
            assert model.compute_wait("b", "q0", i * 0.01, 0.2) == 0.0
        assert model.total_wait() == 0.0

    def test_transfer_serializes_egress_and_ingress(self):
        model = ContentionModel()
        assert model.transfer_wait("a", "b", "q1", 0.0, 1.0) == 0.0
        # q2 from a different source still queues at b's ingress.
        assert model.transfer_wait("c", "b", "q2", 0.0, 1.0) == pytest.approx(1.0)
        # q3 out of the now-busy egress at c waits behind q2 there, then
        # finds d's ingress idle.
        assert model.transfer_wait("c", "d", "q3", 0.0, 1.0) == pytest.approx(1.0)

    def test_compute_queues_per_node(self):
        model = ContentionModel()
        assert model.compute_wait("a", "q1", 0.0, 0.5) == 0.0
        assert model.compute_wait("a", "q2", 0.0, 0.5) == pytest.approx(0.5)
        assert model.compute_wait("b", "q3", 0.0, 0.5) == 0.0  # other node

    def test_snapshot_reports_only_contended_queues(self):
        model = ContentionModel()
        model.transfer_wait("a", "b", "q1", 0.0, 1.0)  # never contended
        model.compute_wait("c", "q1", 0.0, 1.0)
        model.compute_wait("c", "q2", 0.0, 1.0)  # waits behind q1
        snap = model.snapshot()
        assert list(snap) == ["cpu:c"]
        assert snap["cpu:c"]["waits"] == 1
        assert snap["cpu:c"]["total_wait"] == pytest.approx(1.0)
        assert model.max_queue_depth() == 2
        assert model.total_wait() == pytest.approx(1.0)
