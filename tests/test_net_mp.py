"""Multi-process transport tests: real OS processes, same node code."""

import pytest

from repro.net.mp import MpCluster, MpTransportError
from repro.overlay import StorageNode
from repro.rdf import FOAF, TriplePattern, Variable
from repro.sparql.algebra import BGP
from repro.workloads import paper_example_partition

ALG = BGP((TriplePattern(Variable("x"), FOAF.knows, Variable("y")),))


@pytest.fixture
def cluster():
    with MpCluster() as c:
        for sid, triples in paper_example_partition().items():
            c.spawn(StorageNode(sid, triples))
        yield c


class TestMpCluster:
    def test_call_evaluate(self, cluster):
        rows = cluster.call("D2", "evaluate", {"algebra": ALG})
        assert len(rows) > 0

    def test_call_unknown_node(self, cluster):
        with pytest.raises(MpTransportError):
            cluster.call("ghost", "evaluate", {})

    def test_call_missing_handler_raises(self, cluster):
        with pytest.raises(MpTransportError, match="no handler"):
            cluster.call("D1", "nonexistent", {})

    def test_chain_across_processes_matches_single_node_union(self, cluster):
        # chained in-network aggregation over all four real processes
        cluster.send("D1", "chain_step", {
            "algebra": ALG, "acc": [], "route": ["D2", "D3", "D4"],
            "final": "client", "corr": "q-mp", "notify": None,
        })
        chained = cluster.wait_delivery("q-mp")
        # oracle: union of per-node evaluations
        expected = set()
        for sid in ("D1", "D2", "D3", "D4"):
            expected.update(cluster.call(sid, "evaluate", {"algebra": ALG}))
        assert set(chained) == expected

    def test_duplicate_spawn_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.spawn(StorageNode("D1"))
