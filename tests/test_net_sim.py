"""DES kernel tests: events, processes, composition, determinism."""

import pytest

from repro.net import SimError, Simulator


class TestTimeouts:
    def test_time_advances_to_timeout(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.5)
            return sim.now

        assert sim.run_process(proc()) == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.timeout(-1)

    def test_timeout_value_passthrough(self):
        sim = Simulator()

        def proc():
            value = yield sim.timeout(1, value="done")
            return value

        assert sim.run_process(proc()) == "done"

    def test_ordering_is_fifo_for_equal_times(self):
        sim = Simulator()
        order = []

        def make(tag):
            def proc():
                yield sim.timeout(1.0)
                order.append(tag)
            return proc

        for tag in "abc":
            sim.process(make(tag)())
        sim.run()
        assert order == ["a", "b", "c"]


class TestProcesses:
    def test_nested_process_wait(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2)
            return 42

        def parent():
            value = yield sim.process(child())
            return value + 1

        assert sim.run_process(parent()) == 43

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return f"caught {exc}"

        assert sim.run_process(parent()) == "caught boom"

    def test_uncaught_exception_raised_by_run_process(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1)
            raise RuntimeError("unhandled")

        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run_process(proc())

    def test_yielding_non_event_fails(self):
        sim = Simulator()

        def proc():
            yield 42

        with pytest.raises(SimError):
            sim.run_process(proc())

    def test_process_requires_generator(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.process(lambda: None)


class TestComposites:
    def test_all_of_waits_for_slowest(self):
        sim = Simulator()

        def proc():
            values = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(3, "b"),
                                       sim.timeout(2, "c")])
            return values, sim.now

        values, now = sim.run_process(proc())
        assert values == ["a", "b", "c"]
        assert now == 3

    def test_all_of_empty_completes_immediately(self):
        sim = Simulator()

        def proc():
            values = yield sim.all_of([])
            return values

        assert sim.run_process(proc()) == []

    def test_any_of_returns_first(self):
        sim = Simulator()

        def proc():
            index, value = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(1, "fast")])
            return index, value, sim.now

        assert sim.run_process(proc()) == (1, "fast", 1)

    def test_any_of_empty_rejected(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.any_of([])

    def test_all_of_fails_fast(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1)
            raise ValueError("x")

        def proc():
            with pytest.raises(ValueError):
                yield sim.all_of([sim.process(bad()), sim.timeout(100)])
            return sim.now

        # fails at t=1, does not wait for the 100s timeout
        assert sim.run_process(proc()) == 1


class TestEvents:
    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimError):
            event.succeed(2)

    def test_value_before_trigger_rejected(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.event().value

    def test_run_until_stops_clock(self):
        sim = Simulator()
        sim.timeout(10)
        assert sim.run(until=4) == 4

    def test_deadlock_detection(self):
        sim = Simulator()

        def proc():
            yield sim.event()  # never triggered

        with pytest.raises(SimError, match="deadlock"):
            sim.run_process(proc())
