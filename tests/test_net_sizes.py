"""Wire-size model tests: determinism and structural additivity."""

import pytest

from repro.net import size_of
from repro.overlay import KeyKind, LocationEntry
from repro.rdf import IRI, BlankNode, Literal, Triple, Variable
from repro.sparql import BGP, parse_query, translate_pattern
from repro.sparql.solutions import SolutionMapping


class TestScalars:
    def test_primitives(self):
        assert size_of(None) == 1
        assert size_of(True) == 1
        assert size_of(7) == 8
        assert size_of(2.5) == 8
        assert size_of("abc") == 3
        assert size_of("é") == 2  # UTF-8 bytes, not characters
        assert size_of(b"1234") == 4

    def test_terms(self):
        assert size_of(IRI("http://x/a")) == len("http://x/a") + 2
        assert size_of(Literal("hi")) == 4
        assert size_of(Literal("hi", language="en")) == 7
        assert size_of(BlankNode("b")) == 3
        assert size_of(Variable("x")) == 2

    def test_triple_additive(self):
        t = Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("o"))
        assert size_of(t) == size_of(t.s) + size_of(t.p) + size_of(t.o) + 3


class TestContainers:
    def test_list_additive(self):
        assert size_of([1, 2]) == 8 + (8 + 2) * 2

    def test_dict(self):
        assert size_of({"a": 1}) == 8 + (1 + 8 + 2)

    def test_solution_mapping(self):
        mu = SolutionMapping({Variable("x"): IRI("http://x/a")})
        assert size_of(mu) == 8 + size_of(Variable("x")) + size_of(IRI("http://x/a")) + 2

    def test_bigger_payload_costs_more(self):
        small = [SolutionMapping({Variable("x"): IRI("http://x/a")})]
        big = small * 10
        assert size_of(big) > size_of(small)


class TestStructuredPayloads:
    def test_algebra_node_sized_via_dataclass_rule(self):
        alg = translate_pattern(
            parse_query("SELECT ?x WHERE { ?x <http://x/p> ?y . }").where
        )
        assert isinstance(alg, BGP)
        assert size_of(alg) > 0

    def test_filter_condition_sized(self):
        alg = translate_pattern(
            parse_query('SELECT * WHERE { ?x <http://x/p> ?n . FILTER regex(?n, "S") }').where
        )
        assert size_of(alg) > 0

    def test_enum_sized(self):
        assert size_of(KeyKind.SP) == 3

    def test_wire_size_protocol(self):
        assert size_of(LocationEntry("D1", 5)) == 6

    def test_unknown_type_rejected(self):
        class Mystery:
            pass

        with pytest.raises(TypeError):
            size_of(Mystery())

    def test_deterministic(self):
        mu = SolutionMapping({Variable("x"): Literal("val")})
        assert size_of([mu, mu]) == size_of([mu, mu])
