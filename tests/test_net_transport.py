"""Transport tests: RPC, one-way sends, failures, traffic accounting."""

import pytest

from repro.net import (
    HEADER_BYTES,
    LinkModel,
    Network,
    Node,
    NodeUnknown,
    RemoteError,
    RpcTimeout,
    size_of,
)


class EchoNode(Node):
    def rpc_echo(self, payload, src):
        return payload

    def rpc_boom(self, payload, src):
        raise ValueError("remote failure")

    def rpc_relay(self, payload, src):
        result = yield self.call(payload["via"], "echo", payload["data"])
        return result + "!"

    def rpc_note(self, payload, src):
        self.last_note = (payload, src)


@pytest.fixture
def net():
    network = Network(default_timeout=2.0)
    for name in ("a", "b", "c"):
        network.register(EchoNode(name))
    return network


def run(net, gen):
    return net.sim.run_process(gen)


class TestRpc:
    def test_round_trip(self, net):
        def proc():
            return (yield net.call("client", "a", "echo", "hello"))

        assert run(net, proc()) == "hello"

    def test_generator_handler_chains(self, net):
        def proc():
            return (yield net.call("client", "a", "relay", {"via": "b", "data": "x"}))

        assert run(net, proc()) == "x!"

    def test_remote_exception_becomes_remote_error(self, net):
        def proc():
            with pytest.raises(RemoteError, match="remote failure"):
                yield net.call("client", "a", "boom")
            return True

        assert run(net, proc())

    def test_missing_handler_is_remote_error(self, net):
        def proc():
            with pytest.raises(RemoteError, match="no handler"):
                yield net.call("client", "a", "nonexistent")
            return True

        assert run(net, proc())

    def test_unknown_destination_fails_fast(self, net):
        def proc():
            with pytest.raises(NodeUnknown):
                yield net.call("client", "ghost", "echo", "x")
            return net.sim.now

        assert run(net, proc()) < 0.5  # immediate, not a timeout

    def test_dead_node_times_out(self, net):
        net.fail_node("b")

        def proc():
            with pytest.raises(RpcTimeout):
                yield net.call("client", "b", "echo", "x")
            return net.sim.now

        assert run(net, proc()) == pytest.approx(2.0)

    def test_node_dying_mid_call_times_out(self, net):
        class Dier(Node):
            def rpc_die(self, payload, src):
                self.alive = False
                return "never delivered"

        net.register(Dier("d"))

        def proc():
            with pytest.raises(RpcTimeout):
                yield net.call("client", "d", "die")
            return True

        assert run(net, proc())

    def test_recover_node(self, net):
        net.fail_node("a")
        net.recover_node("a")

        def proc():
            return (yield net.call("client", "a", "echo", "back"))

        assert run(net, proc()) == "back"

    def test_generator_handler_node_dies_mid_chain(self, net):
        """A node that crashes while its generator handler is awaiting a
        nested call never replies (`_respond_value` alive check): the
        caller sees a timeout, not a ghost answer."""

        class Dier(Node):
            def rpc_slow(self, payload, src):
                result = yield self.call("a", "echo", payload)
                self.alive = False
                return result

        net.register(Dier("d"))

        def proc():
            with pytest.raises(RpcTimeout):
                yield net.call("client", "d", "slow", "x")
            return True

        assert run(net, proc())

    def test_handler_error_after_node_death_not_delivered(self, net):
        net.fail_node("a")

        def proc():
            with pytest.raises(RpcTimeout):
                # The dead node drops the request entirely — not even a
                # RemoteError for the handler it doesn't have.
                yield net.call("client", "a", "nonexistent")
            return True

        assert run(net, proc())


class TestOneWay:
    def test_send_dispatches_handler(self, net):
        net.send("client", "a", "note", {"k": 1})
        net.sim.run()
        assert net.nodes["a"].last_note == ({"k": 1}, "client")

    def test_send_to_dead_node_dropped(self, net):
        net.fail_node("a")
        net.send("client", "a", "note", "x")
        net.sim.run()
        assert not hasattr(net.nodes["a"], "last_note")

    def test_send_to_unknown_dropped_silently(self, net):
        net.send("client", "ghost", "note", "x")
        net.sim.run()  # no exception


class TestAccounting:
    def test_bytes_and_messages_counted(self, net):
        def proc():
            yield net.call("client", "a", "echo", "12345")

        run(net, proc())
        assert net.stats.messages == 2  # request + reply
        request = net.stats.records[0]
        assert request.bytes == HEADER_BYTES + size_of("echo") + size_of("12345")

    def test_request_bytes_charged_exactly_once_per_message(self, net):
        """Every message crossing a link appears exactly once in the
        stats ledger, even when handlers chain nested RPCs."""

        def proc():
            yield net.call("client", "a", "relay", {"via": "b", "data": "x"})

        run(net, proc())
        # client->a request, a->b nested request, b->a reply, a->client reply
        assert net.stats.messages == 4
        assert len(net.stats.records) == 4
        labels = [(r.src, r.dst, r.kind) for r in net.stats.records]
        assert len(set(labels)) == 4  # no message double-charged
        assert net.stats.bytes_total == sum(r.bytes for r in net.stats.records)

    def test_error_reply_charged(self, net):
        def proc():
            with pytest.raises(RemoteError):
                yield net.call("client", "a", "boom")

        run(net, proc())
        assert net.stats.messages == 2
        assert net.stats.records[1].kind == "boom.error"
        assert net.stats.records[1].bytes > HEADER_BYTES

    def test_oneway_bytes_charged_once(self, net):
        net.send("client", "a", "note", {"k": 1})
        net.sim.run()
        assert net.stats.messages == 1
        expected = HEADER_BYTES + size_of("note") + size_of({"k": 1})
        assert net.stats.records[0].bytes == expected

    def test_latency_model(self):
        link = LinkModel(latency=0.5, bandwidth=100.0)
        net = Network(link=link, default_timeout=1e6)
        net.register(EchoNode("a"))

        def proc():
            yield net.call("client", "a", "echo", None)
            return net.sim.now

        elapsed = run(net, proc())
        req = HEADER_BYTES + size_of("echo") + size_of(None)
        rep = HEADER_BYTES + size_of(None)
        assert elapsed == pytest.approx(1.0 + (req + rep) / 100.0)

    def test_per_link_breakdown(self, net):
        def proc():
            yield net.call("client", "a", "echo", "x")

        run(net, proc())
        assert ("client", "a") in net.stats.per_link_bytes
        assert ("a", "client") in net.stats.per_link_bytes

    def test_checkpoint_delta(self, net):
        def proc():
            yield net.call("client", "a", "echo", "x")

        run(net, proc())
        cp = net.stats.checkpoint()
        run(net, proc())
        delta = net.stats.delta(cp)
        assert delta.messages == 2

    def test_duplicate_registration_rejected(self, net):
        with pytest.raises(ValueError):
            net.register(EchoNode("a"))

    def test_compute_delay_added(self):
        net = Network()
        node = EchoNode("slow")
        node.compute_delay = 1.0
        net.register(node)

        def proc():
            yield net.call("client", "slow", "echo", None)
            return net.sim.now

        assert run(net, proc()) > 1.0
