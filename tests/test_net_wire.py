"""Wire formats for shipped solutions: SolutionBatch and JoinDigest.

Pins the PR's core size invariants:

* the plain encoding (``size_of`` over a list of mappings) charges a
  repeated term its full size on every row — the inefficiency the
  dictionary-delta batch exists to remove;
* a batch is deterministic, lossless, and **never** costs more than the
  plain encoding plus the bounded ``BATCH_HEADER_BYTES`` envelope;
* a digest never produces a false negative, and refuses to prune at all
  when pruning would be unsound.
"""

import pytest

from repro.chord.hashing import hash_terms_seeded
from repro.net.sizes import size_of
from repro.net.wire import (
    BATCH_HEADER_BYTES,
    DIGEST_HEADER_BYTES,
    JoinDigest,
    SolutionBatch,
    as_solution_set,
    encode_solutions,
    mapping_sort_key,
)
from repro.rdf import IRI, Literal, Variable
from repro.sparql.solutions import SolutionMapping

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

LONG = IRI("http://example.org/a/rather/long/shared/resource#anchor-term")


def repetitive(n=50):
    """n rows all sharing one long term — the dictionary's best case."""
    return {
        SolutionMapping({X: LONG, Y: IRI(f"http://example.org/i{i}")})
        for i in range(n)
    }


def unique_rows(n=5):
    """Rows with no term repetition — the dictionary's worst case."""
    return {
        SolutionMapping({X: IRI(f"http://a.example/{i}"),
                         Y: Literal(f"label {i}")})
        for i in range(n)
    }


def plain_size(solutions):
    """The original wire charge for a shipped solution set."""
    return size_of(sorted(set(solutions), key=mapping_sort_key))


class TestSolutionBatch:
    @pytest.mark.parametrize("solutions", [
        set(), {SolutionMapping({X: LONG})}, unique_rows(), repetitive(),
        {SolutionMapping()},  # the empty mapping is a valid row
    ], ids=["empty", "single", "unique", "repetitive", "empty-mapping"])
    def test_round_trip(self, solutions):
        batch = SolutionBatch.encode(solutions)
        assert batch.decode() == set(solutions)
        assert len(batch) == len(set(solutions))

    @pytest.mark.parametrize("solutions", [
        set(), unique_rows(), repetitive(),
    ], ids=["empty", "unique", "repetitive"])
    def test_never_larger_than_plain_plus_header(self, solutions):
        batch = SolutionBatch.encode(solutions)
        assert batch.wire_size() <= plain_size(solutions) + BATCH_HEADER_BYTES

    def test_deterministic_across_input_orders(self):
        rows = sorted(repetitive(), key=mapping_sort_key)
        a = SolutionBatch.encode(rows)
        b = SolutionBatch.encode(list(reversed(rows)))
        assert a.rows == b.rows
        assert a.terms == b.terms
        assert a.variables == b.variables
        assert a.wire_size() == b.wire_size()

    def test_plain_encoding_charges_repeats_in_full(self):
        # The regression this PR fixes the cost of: 50 rows sharing LONG
        # pay size_of(LONG) 50 times on the plain wire...
        sols = repetitive(50)
        assert plain_size(sols) >= 50 * size_of(LONG)
        # ...while the dictionary batch tables the term once.
        batch = SolutionBatch.encode(sols)
        assert batch.mode == "dict"
        assert batch.wire_size() < 0.6 * plain_size(sols)

    def test_falls_back_to_plain_mode_when_dictionary_loses(self):
        batch = SolutionBatch.encode({SolutionMapping({X: IRI("http://e/1")})})
        assert batch.mode == "plain"
        assert batch.decode() == {SolutionMapping({X: IRI("http://e/1")})}

    def test_size_of_integration_is_exactly_additive(self):
        batch = SolutionBatch.encode(repetitive())
        assert size_of(batch) == batch.wire_size()
        # Embedded in a payload dict, the batch adds exactly its wire size
        # (plus the dict's own per-entry overhead) — nothing hidden.
        with_batch = size_of({"corr": "c", "data": batch})
        without = size_of({"corr": "c"})
        per_entry = (size_of({"corr": "c", "x": 0})
                     - without - size_of("x") - size_of(0))
        assert with_batch == (without + size_of("data")
                              + batch.wire_size() + per_entry)

    def test_encode_solutions_off_is_the_original_wire_format(self):
        sols = unique_rows()
        plain = encode_solutions(sols, False)
        assert plain == sorted(sols, key=mapping_sort_key)
        assert size_of(plain) == plain_size(sols)
        assert as_solution_set(plain) == sols
        assert as_solution_set(encode_solutions(sols, True)) == sols


def key_rows(n, var=X):
    return {SolutionMapping({var: IRI(f"http://k.example/{i}"), Y: LONG})
            for i in range(n)}


class TestJoinDigest:
    def test_exact_mode_filters_exactly(self):
        resident = key_rows(10)
        digest = JoinDigest.build(resident, [X], exact_threshold=64)
        assert digest.mode == "exact" and digest.prunable
        member = SolutionMapping({X: IRI("http://k.example/3"), Z: LONG})
        stranger = SolutionMapping({X: IRI("http://k.example/99")})
        assert digest.allows(member)
        assert not digest.allows(stranger)
        assert digest.filter({member, stranger}) == {member}

    def test_bloom_mode_has_no_false_negatives(self):
        resident = key_rows(200)
        digest = JoinDigest.build(resident, [X], exact_threshold=64,
                                  bloom_bits=10)
        assert digest.mode == "bloom" and digest.prunable
        for mu in resident:
            assert digest.allows(mu)

    def test_bloom_mode_prunes_most_strangers(self):
        digest = JoinDigest.build(key_rows(200), [X], exact_threshold=64,
                                  bloom_bits=10)
        strangers = [SolutionMapping({X: IRI(f"http://other.example/{i}")})
                     for i in range(100)]
        rejected = sum(1 for mu in strangers if not digest.allows(mu))
        assert rejected >= 80  # ~1% theoretical false-positive rate

    def test_bloom_is_smaller_than_exact_would_be(self):
        resident = key_rows(200)
        bloom = JoinDigest.build(resident, [X], exact_threshold=64)
        exact = JoinDigest.build(resident, [X], exact_threshold=10_000)
        assert bloom.mode == "bloom" and exact.mode == "exact"
        assert bloom.wire_size() < exact.wire_size()
        assert bloom.wire_size() == (
            DIGEST_HEADER_BYTES + size_of(X) + 2 + bloom.nbits // 8
        )

    def test_unbound_resident_row_disables_pruning(self):
        resident = key_rows(5) | {SolutionMapping({Y: LONG})}  # no X binding
        digest = JoinDigest.build(resident, [X])
        assert not digest.prunable
        assert digest.allows(SolutionMapping({X: IRI("http://nowhere/")}))

    def test_empty_variable_list_disables_pruning(self):
        digest = JoinDigest.build(key_rows(5), [])
        assert not digest.prunable

    def test_candidate_missing_a_digest_var_is_admitted(self):
        digest = JoinDigest.build(key_rows(5), [X])
        assert digest.allows(SolutionMapping({Z: LONG}))

    def test_deterministic(self):
        rows = sorted(key_rows(200), key=mapping_sort_key)
        a = JoinDigest.build(rows, [X], exact_threshold=64)
        b = JoinDigest.build(list(reversed(rows)), [X], exact_threshold=64)
        assert (a.bits, a.nbits, a.nhashes, a.wire_size()) == \
               (b.bits, b.nbits, b.nhashes, b.wire_size())

    def test_size_of_integration(self):
        digest = JoinDigest.build(key_rows(5), [X])
        assert size_of(digest) == digest.wire_size()


class TestSeededHashing:
    def test_deterministic(self):
        terms = (IRI("http://a/"), Literal("x"))
        assert hash_terms_seeded(terms, 3, 1024) == \
               hash_terms_seeded(terms, 3, 1024)

    def test_seed_changes_position(self):
        terms = (IRI("http://a/"),)
        values = {hash_terms_seeded(terms, seed, 1 << 20) for seed in range(8)}
        assert len(values) > 1

    def test_range(self):
        for seed in range(4):
            assert 0 <= hash_terms_seeded((LONG,), seed, 97) < 97
