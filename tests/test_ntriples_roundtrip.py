"""Property-based round-trip tests for the N-Triples writer/parser pair.

The WAL payload codec leans on ``Triple.n3()`` / ``parse_ntriples`` for
its on-disk representation, so serialize∘parse must be the identity for
every term the model can hold — including literals full of quotes,
backslashes, newlines, and characters that only survive via the
``\\uXXXX`` / ``\\UXXXXXXXX`` escape path.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.rdf import BlankNode, IRI, Literal, Triple
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples

# Characters an IRI may not contain (term model) — the parser's regex
# additionally refuses any whitespace, so keep that out of the alphabet.
_IRI_ALPHABET = st.characters(
    blacklist_characters=' <>"{}|^`\\',
    blacklist_categories=("Cs", "Cc", "Zs", "Zl", "Zp"),
)

iris = st.builds(IRI, st.text(alphabet=_IRI_ALPHABET, min_size=1, max_size=30))

bnodes = st.builds(
    BlankNode,
    st.builds(
        lambda head, tail: head + tail,
        st.sampled_from(string.ascii_letters),
        st.text(
            alphabet=string.ascii_letters + string.digits + "_.-", max_size=12
        ),
    ),
)

# Lexical forms are unconstrained text (hypothesis already excludes lone
# surrogates, which cannot be encoded to UTF-8 files anyway).
lexicals = st.text(max_size=40)

langs = st.from_regex(r"[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8}){0,2}", fullmatch=True)

literals = st.one_of(
    st.builds(Literal, lexicals),
    st.builds(lambda lex, lang: Literal(lex, language=lang), lexicals, langs),
    st.builds(lambda lex, dt: Literal(lex, datatype=dt), lexicals, iris),
)

subjects = st.one_of(iris, bnodes)
objects = st.one_of(iris, bnodes, literals)
triples = st.builds(Triple, subjects, iris, objects)


@settings(max_examples=200, deadline=None)
@given(triple=triples)
def test_single_triple_round_trips(triple):
    parsed = list(parse_ntriples(serialize_ntriples([triple])))
    assert parsed == [triple]


@settings(max_examples=60, deadline=None)
@given(batch=st.lists(triples, max_size=15))
def test_document_round_trips_in_order(batch):
    text = serialize_ntriples(batch)
    assert list(parse_ntriples(text)) == batch
    # Serialization is canonical: a second trip writes the same bytes.
    assert serialize_ntriples(parse_ntriples(text)) == text


@settings(max_examples=100, deadline=None)
@given(lexical=lexicals)
def test_literal_escaping_round_trips(lexical):
    lit = Literal(lexical)
    n3 = lit.n3()
    assert "\n" not in n3 and "\r" not in n3  # WAL records are single lines
    (parsed,) = parse_ntriples(f"<http://x/s> <http://x/p> {n3} .")
    assert parsed.o == lit


class TestEscapeEdgeCases:
    def test_named_escapes(self):
        lit = Literal('tab\there "quoted" back\\slash\nnewline\rreturn')
        assert Literal(lit.n3()[1:-1]) != lit  # actually escaped
        (t,) = parse_ntriples(f"<http://x/s> <http://x/p> {lit.n3()} .")
        assert t.o == lit

    def test_control_chars_take_u_escape_path(self):
        lit = Literal("bell\x07 null\x00 nel\x85")
        n3 = lit.n3()
        assert "\\u0007" in n3 and "\\u0000" in n3 and "\\u0085" in n3
        (t,) = parse_ntriples(f"<http://x/s> <http://x/p> {n3} .")
        assert t.o == lit

    def test_astral_nonprintable_takes_big_u_escape_path(self):
        lit = Literal("tag\U000E0001")
        n3 = lit.n3()
        assert "\\U000E0001" in n3
        (t,) = parse_ntriples(f"<http://x/s> <http://x/p> {n3} .")
        assert t.o == lit

    def test_printable_unicode_goes_out_raw(self):
        lit = Literal("snow☃man \U0001F600")
        assert "\\u" not in lit.n3() and "\\U" not in lit.n3()
        (t,) = parse_ntriples(f"<http://x/s> <http://x/p> {lit.n3()} .")
        assert t.o == lit

    def test_hand_written_u_escapes_parse(self):
        text = '<http://x/s> <http://x/p> "\\u0041\\U0001F600" .'
        (t,) = parse_ntriples(text)
        assert t.o == Literal("A\U0001F600")
