"""Incremental publication: live data additions/removals stay queryable
and keep the distributed index (frequencies included) exact."""

import pytest

from repro.overlay import key_for_pattern
from repro.rdf import FOAF, IRI, Triple, TriplePattern, Variable

from helpers import build_system

X, Y = Variable("x"), Variable("y")
QUERY = "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"


def new_triples(n=5, offset=1000):
    return [
        Triple(IRI(f"http://example.org/people/new{offset + i}"),
               FOAF.knows,
               IRI(f"http://example.org/people/new{offset + i + 1}"))
        for i in range(n)
    ]


def knows_row(system):
    _, key = key_for_pattern(TriplePattern(X, FOAF.knows, Y), system.space)
    return system.ring.owner_of(key).locate(key)


class TestPublishDelta:
    @pytest.mark.parametrize("protocol", [False, True])
    def test_added_triples_become_queryable(self, protocol):
        system = build_system()
        before, _ = system.execute(QUERY, initiator="D1")
        storage = system.storage_nodes["D4"]  # previously held no knows-triples
        added = new_triples()
        storage.add_triples(added)
        system.publish_delta(storage, added, protocol=protocol)
        after, _ = system.execute(QUERY, initiator="D1")
        assert len(after.rows) == len(before.rows) + len(added)

    def test_frequency_updated_exactly(self):
        system = build_system()
        storage = system.storage_nodes["D2"]
        base = next(e for e in knows_row(system) if e.storage_id == "D2").frequency
        added = new_triples(3)
        storage.add_triples(added)
        system.publish_delta(storage, added)
        updated = next(e for e in knows_row(system) if e.storage_id == "D2").frequency
        assert updated == base + 3

    def test_unpublished_additions_stay_invisible(self):
        """Local adds without publication are not discoverable — the
        index, not the data, drives routing."""
        system = build_system()
        before, _ = system.execute(QUERY, initiator="D1")
        storage = system.storage_nodes["D4"]
        storage.add_triples(new_triples())
        after, _ = system.execute(QUERY, initiator="D1")
        assert len(after.rows) == len(before.rows)

    def test_duplicate_add_publishes_nothing_new(self):
        system = build_system()
        storage = system.storage_nodes["D2"]
        existing = next(iter(storage.graph))
        inserted = storage.add_triples([existing])
        assert inserted == 0
        assert system.publish_delta(storage, []) == 0


class TestUnpublishDelta:
    def test_removed_triples_disappear_from_answers(self):
        system = build_system()
        storage = system.storage_nodes["D2"]
        victim = next(iter(storage.graph.triples(TriplePattern(X, FOAF.knows, Y))))
        before, _ = system.execute(QUERY, initiator="D1")
        storage.remove_triples([victim])
        system.unpublish_delta(storage, [victim])
        after, _ = system.execute(QUERY, initiator="D1")
        assert len(after.rows) == len(before.rows) - 1

    def test_frequencies_reach_zero_and_cell_vanishes(self):
        system = build_system()
        storage = system.storage_nodes["D2"]
        knows = list(storage.graph.triples(TriplePattern(X, FOAF.knows, Y)))
        storage.remove_triples(knows)
        system.unpublish_delta(storage, knows)
        assert all(e.storage_id != "D2" for e in knows_row(system))

    def test_add_then_remove_roundtrip_restores_index(self):
        system = build_system()
        storage = system.storage_nodes["D2"]
        snapshot = {e.storage_id: e.frequency for e in knows_row(system)}
        added = new_triples(4)
        storage.add_triples(added)
        system.publish_delta(storage, added)
        storage.remove_triples(added)
        system.unpublish_delta(storage, added)
        assert {e.storage_id: e.frequency for e in knows_row(system)} == snapshot

    def test_replica_sweep_scoped_to_successor_list(self):
        """PR 9 satellite: unpublication sweeps replica rows only at the
        owner and its ``replication_factor - 1`` successors — the exact
        placement publish writes to — never across all index nodes."""
        system = build_system(num_index=16, replication_factor=3)
        storage = system.storage_nodes["D2"]
        added = new_triples(1)
        storage.add_triples(added)
        system.publish_delta(storage, added)
        counts = storage.key_counts_for(added, system.space)

        expected_touches = 0
        allowed = set()
        for (_kind, key), _freq in counts.items():
            owner = system.ring.owner_of(key)
            allowed.add(owner.node_id)
            expected_touches += 1  # owner-side promotion cleanup
            for ref in owner.successor_list[:2]:
                if ref != owner.ref:
                    allowed.add(ref.node_id)
                    expected_touches += 1

        touched = {}

        class CountingReplicas:
            def __init__(self, node_id, table):
                self._node_id = node_id
                self._table = table

            def remove(self, key, sid, freq):
                touched[self._node_id] = touched.get(self._node_id, 0) + 1
                return self._table.remove(key, sid, freq)

            def __getattr__(self, name):
                return getattr(self._table, name)

        for node_id, node in system.index_nodes.items():
            node.replicas = CountingReplicas(node_id, node.replicas)

        storage.remove_triples(added)
        system.unpublish_delta(storage, added)
        assert set(touched) <= allowed
        assert sum(touched.values()) == expected_touches
        # Strictly cheaper than the old all-nodes sweep (one replica
        # removal at every index node for every key).
        assert expected_touches < len(counts) * len(system.index_nodes)
