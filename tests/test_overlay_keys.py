"""Six-key index scheme tests (Sect. III-B) and pattern→key mapping
(Sect. IV-C)."""


from repro.chord import IdentifierSpace
from repro.overlay import KeyKind, SHAPE_TO_KEY, index_keys, key_for_pattern
from repro.rdf import IRI, Literal, PatternShape, Triple, TriplePattern, Variable

SPACE = IdentifierSpace(32)
S, P, O = IRI("http://x/s"), IRI("http://x/p"), Literal("o")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")
TRIPLE = Triple(S, P, O)


class TestIndexKeys:
    def test_exactly_six_keys(self):
        keys = list(index_keys(TRIPLE, SPACE))
        assert len(keys) == 6
        assert {kind for kind, _ in keys} == set(KeyKind)

    def test_keys_deterministic(self):
        assert list(index_keys(TRIPLE, SPACE)) == list(index_keys(TRIPLE, SPACE))

    def test_different_kinds_different_keys(self):
        """⟨s⟩ of a term and ⟨o⟩ of the same term use distinct hash
        functions (kind participates in the hash)."""
        same = IRI("http://x/same")
        t = Triple(same, P, same)
        keys = dict(index_keys(t, SPACE))
        assert keys[KeyKind.S] != keys[KeyKind.O]

    def test_triples_sharing_attribute_share_key(self):
        t2 = Triple(S, P, Literal("other"))
        k1 = dict(index_keys(TRIPLE, SPACE))
        k2 = dict(index_keys(t2, SPACE))
        assert k1[KeyKind.SP] == k2[KeyKind.SP]
        assert k1[KeyKind.S] == k2[KeyKind.S]
        assert k1[KeyKind.SO] != k2[KeyKind.SO]


class TestPatternToKey:
    CASES = {
        TriplePattern(S, P, O): KeyKind.SP,   # fully bound
        TriplePattern(S, P, Z): KeyKind.SP,
        TriplePattern(S, Y, O): KeyKind.SO,
        TriplePattern(X, P, O): KeyKind.PO,
        TriplePattern(S, Y, Z): KeyKind.S,
        TriplePattern(X, P, Z): KeyKind.P,
        TriplePattern(X, Y, O): KeyKind.O,
    }

    def test_seven_indexed_shapes(self):
        for pattern, expected_kind in self.CASES.items():
            kind, key = key_for_pattern(pattern, SPACE)
            assert kind is expected_kind
            assert 0 <= key < SPACE.size

    def test_fully_unbound_has_no_key(self):
        assert key_for_pattern(TriplePattern(X, Y, Z), SPACE) is None

    def test_all_shapes_covered_by_mapping(self):
        assert set(SHAPE_TO_KEY) == set(PatternShape)

    def test_pattern_key_matches_publication_key(self):
        """The key a query hashes to equals the key the triple was
        published under — the index actually routes queries to data."""
        pattern = TriplePattern(S, P, Z)
        kind, query_key = key_for_pattern(pattern, SPACE)
        published = dict(index_keys(TRIPLE, SPACE))
        assert published[kind] == query_key

    def test_every_bound_shape_routes_to_publication(self):
        for pattern in self.CASES:
            kind, query_key = key_for_pattern(pattern, SPACE)
            assert dict(index_keys(TRIPLE, SPACE))[kind] == query_key
