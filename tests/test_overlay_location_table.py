"""Location table tests — Table I semantics."""

import pytest

from repro.overlay import LocationEntry, LocationTable


@pytest.fixture
def table():
    t = LocationTable()
    # The paper's Table I for N7.
    t.add(1, "D1", 15)
    t.add(1, "D3", 10)
    t.add(2, "D1", 10)
    t.add(2, "D3", 20)
    t.add(2, "D4", 15)
    t.add(3, "D1", 30)
    return t


class TestRows:
    def test_lookup_sorted_and_typed(self, table):
        row = table.lookup(2)
        assert row == [
            LocationEntry("D1", 10),
            LocationEntry("D3", 20),
            LocationEntry("D4", 15),
        ]

    def test_lookup_missing_key_empty(self, table):
        assert table.lookup(99) == []

    def test_add_accumulates_frequency(self, table):
        table.add(1, "D1", 5)
        assert table.lookup(1)[0] == LocationEntry("D1", 20)

    def test_add_rejects_nonpositive(self, table):
        with pytest.raises(ValueError):
            table.add(1, "D1", 0)

    def test_total_frequency(self, table):
        assert table.total_frequency(2) == 45
        assert table.total_frequency(99) == 0

    def test_cell_count(self, table):
        assert table.cell_count() == 6
        assert len(table) == 3


class TestRemoval:
    def test_remove_partial_count(self, table):
        table.remove(2, "D3", 5)
        assert table.lookup(2)[1] == LocationEntry("D3", 15)

    def test_remove_full_drops_cell(self, table):
        table.remove(2, "D3")
        assert [e.storage_id for e in table.lookup(2)] == ["D1", "D4"]

    def test_remove_more_than_count_drops_cell(self, table):
        table.remove(1, "D3", 100)
        assert [e.storage_id for e in table.lookup(1)] == ["D1"]

    def test_remove_last_cell_drops_row(self, table):
        table.remove(3, "D1")
        assert 3 not in table

    def test_remove_unknown_is_noop(self, table):
        table.remove(99, "D9")
        table.remove(1, "D9")
        assert table.cell_count() == 6

    def test_remove_storage_node_everywhere(self, table):
        touched = table.remove_storage_node("D1")
        assert touched == 3
        assert 3 not in table  # row had only D1
        assert all("D1" != e.storage_id for key in (1, 2) for e in table.lookup(key))


class TestTransfer:
    def test_export_import_roundtrip(self, table):
        clone = LocationTable()
        for key, cells in table.export_range():
            clone.import_row(key, cells)
        assert clone.lookup(2) == table.lookup(2)
        assert clone.cell_count() == table.cell_count()

    def test_import_is_idempotent_max_merge(self, table):
        table.import_row(1, {"D1": 15})
        assert table.lookup(1)[0].frequency == 15  # not 30

    def test_drop_row(self, table):
        table.drop_row(1)
        assert 1 not in table

    def test_format_table_paper_style(self, table):
        text = table.format_table({1: "K1", 2: "K2", 3: "K3"})
        assert "K2 | D1 (10), D3 (20), D4 (15)" in text
