"""Membership tests: Sect. III-C (index join) and III-D (departure,
failure, replication-backed recovery)."""


from repro.overlay import (
    depart_index_node,
    depart_storage_node,
    fail_index_node,
    fail_storage_node,
    join_index_node,
    key_for_pattern,
)
from repro.query import DistributedExecutor
from repro.rdf import FOAF, TriplePattern, Variable

from helpers import build_system

X, Y = Variable("x"), Variable("y")
KNOWS = TriplePattern(X, FOAF.knows, Y)
QUERY = "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"


def total_cells(system):
    return sum(n.table.cell_count() for n in system.index_nodes.values())


def oracle_rows(system):
    from repro.sparql import evaluate_query, parse_query
    from repro.rdf import COMMON_PREFIXES

    return evaluate_query(parse_query(QUERY, COMMON_PREFIXES), system.union_graph()).rows


class TestIndexNodeJoin:
    def test_join_preserves_index_and_queries(self):
        system = build_system()
        cells_before = total_cells(system)
        join_index_node(system, "Nnew")
        assert system.ring.is_consistent()
        assert total_cells(system) == cells_before  # rows moved, not lost
        result, _ = system.execute(QUERY, initiator="D1")
        assert [r for r in result.rows] == [r for r in oracle_rows(system)]

    def test_join_transfers_owned_range(self):
        system = build_system(num_index=4)
        kind, key = key_for_pattern(KNOWS, system.space)
        old_owner = system.ring.owner_of(key)
        # Join a node whose id sits just at the key: it becomes the owner.
        join_index_node(system, "Nsteal", ident=key)
        new_owner = system.ring.owner_of(key)
        assert new_owner.node_id == "Nsteal"
        assert new_owner.locate(key) != []


class TestIndexNodeDeparture:
    def test_graceful_departure_hands_over_table(self):
        system = build_system()
        kind, key = key_for_pattern(KNOWS, system.space)
        owner = system.ring.owner_of(key)
        cells_before = total_cells(system)
        depart_index_node(system, owner.node_id)
        assert system.ring.is_consistent()
        assert total_cells(system) == cells_before
        result, _ = system.execute(QUERY, initiator="D1")
        assert len(result.rows) == len(oracle_rows(system))

    def test_departure_reattaches_storage_nodes(self):
        system = build_system()
        victim = system.storage_nodes["D1"].index_node_id
        depart_index_node(system, victim)
        new_parent = system.storage_nodes["D1"].index_node_id
        assert new_parent in system.index_nodes
        assert "D1" in system.index_nodes[new_parent].attached_storage


class TestIndexNodeFailure:
    def test_failure_with_replication_keeps_queries_working(self):
        system = build_system(replication_factor=2)
        kind, key = key_for_pattern(KNOWS, system.space)
        owner = system.ring.owner_of(key)
        fail_index_node(system, owner.node_id)
        result, report = system.execute(QUERY, initiator="D1")
        assert len(result.rows) == len(oracle_rows(system))

    def test_failure_without_replication_loses_rows(self):
        system = build_system(replication_factor=1)
        kind, key = key_for_pattern(KNOWS, system.space)
        owner = system.ring.owner_of(key)
        fail_index_node(system, owner.node_id)
        new_owner = system.ring.owner_of(key)
        assert new_owner.locate(key) == []  # the paper's motivation for replicas


class TestStorageNodeChurn:
    def test_graceful_departure_unpublishes(self):
        system = build_system()
        depart_storage_node(system, "D2")  # D2 holds the knows-triples
        kind, key = key_for_pattern(KNOWS, system.space)
        owner = system.ring.owner_of(key)
        assert all(e.storage_id != "D2" for e in owner.locate(key))
        result, _ = system.execute(QUERY, initiator="D1")
        assert len(result.rows) == len(oracle_rows(system))

    def test_failure_leaves_stale_entry_until_query_cleans_it(self):
        system = build_system()
        fail_storage_node(system, "D2")
        kind, key = key_for_pattern(KNOWS, system.space)
        owner = system.ring.owner_of(key)
        assert any(e.storage_id == "D2" for e in owner.locate(key))  # stale
        # A query against it times out, cleans, and returns what is left.
        executor = DistributedExecutor(system)
        result, report = executor.execute(QUERY, initiator="D1")
        assert all(e.storage_id != "D2" for e in owner.locate(key))

    def test_failed_storage_node_impact_is_local(self):
        """Sect. III-D: 'the impact on the rest of the whole system is not
        significant' — other queries are unaffected."""
        system = build_system()
        fail_storage_node(system, "D4")  # nick/mbox provider
        result, _ = system.execute(QUERY, initiator="D1")  # knows-query: D2
        assert len(result.rows) == len(oracle_rows(system))
