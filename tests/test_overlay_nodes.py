"""Storage-node and index-node behaviour: publication, local evaluation,
chains, primitive orchestration, mailbox peers."""


from repro.overlay import KeyKind, key_for_pattern
from repro.rdf import FOAF, IRI, Literal, TriplePattern, Variable
from repro.sparql.algebra import BGP
from repro.sparql.solutions import SolutionMapping

from helpers import build_system

X, Y = Variable("x"), Variable("y")
KNOWS = TriplePattern(X, FOAF.knows, Y)


class TestStorageNode:
    def test_key_counts_cover_six_kinds_per_triple(self, paper_system):
        node = paper_system.storage_nodes["D1"]
        counts = node.key_counts(paper_system.space)
        assert sum(counts.values()) == 6 * len(node.graph)

    def test_key_counts_aggregate_shared_attributes(self, paper_system):
        node = paper_system.storage_nodes["D1"]  # holds all foaf:name triples
        counts = node.key_counts(paper_system.space)
        p_key = key_for_pattern(TriplePattern(X, FOAF.name, Y), paper_system.space)
        assert counts[(KeyKind.P, p_key[1])] == len(node.graph)

    def test_rpc_evaluate_local_only(self, paper_system):
        d2 = paper_system.storage_nodes["D2"]  # knows-triples live here
        rows = d2.rpc_evaluate({"algebra": BGP((KNOWS,))}, "test")
        assert len(rows) == d2.graph.count(KNOWS)

    def test_rpc_count(self, paper_system):
        d2 = paper_system.storage_nodes["D2"]
        assert d2.rpc_count({"pattern": KNOWS}, "t") == d2.graph.count(KNOWS)


class TestChainStep:
    def test_chain_unions_and_delivers(self, paper_system):
        net = paper_system.network
        d2 = paper_system.storage_nodes["D2"]
        d4 = paper_system.storage_nodes["D4"]
        # D4 holds the duplicated nick triple; D2 also holds it: dedup check.
        nick_pattern = TriplePattern(X, FOAF.nick, Y)
        net.send("test", "D2", "chain_step", {
            "algebra": BGP((nick_pattern,)),
            "acc": [], "route": ["D4"], "final": "D1", "corr": "c1",
            "notify": None,
        })
        net.sim.run()
        d1 = paper_system.storage_nodes["D1"]
        merged = d1.mailbox["c1"]
        # the duplicated triple appears once (set union en route)
        expected = d2.local_eval(BGP((nick_pattern,))) | d4.local_eval(BGP((nick_pattern,)))
        assert merged == expected

    def test_chain_final_at_self_needs_no_message(self, paper_system):
        net = paper_system.network
        before = net.stats.messages
        net.send("test", "D2", "chain_step", {
            "algebra": BGP((KNOWS,)), "acc": [], "route": [],
            "final": "D2", "corr": "self", "notify": None,
        })
        net.sim.run()
        assert "self" in paper_system.storage_nodes["D2"].mailbox
        assert net.stats.messages == before + 1  # only the kickoff


class TestIndexNode:
    def test_publication_placed_entries_at_owners(self, paper_system):
        kind, key = key_for_pattern(KNOWS, paper_system.space)
        owner = paper_system.ring.owner_of(key)
        entries = owner.locate(key)
        # knows-triples live on D2 (plus nothing else in this partition)
        assert [e.storage_id for e in entries] == ["D2"]
        assert entries[0].frequency == paper_system.storage_nodes["D2"].graph.count(KNOWS)

    def test_execute_primitive_basic_returns_union(self, paper_system):
        kind, key = key_for_pattern(KNOWS, paper_system.space)
        owner = paper_system.ring.owner_of(key)

        def proc():
            response = yield paper_system.network.call(
                "D1", owner.node_id, "execute_primitive",
                {"algebra": BGP((KNOWS,)), "key": key, "strategy": "basic",
                 "corr": "q"},
            )
            return response

        response = paper_system.sim.run_process(proc())
        assert response["mode"] == "direct"
        oracle = set()
        for node in paper_system.storage_nodes.values():
            oracle |= node.local_eval(BGP((KNOWS,)))
        assert set(response["data"]) == oracle

    def test_execute_primitive_deposit_mode(self, paper_system):
        kind, key = key_for_pattern(KNOWS, paper_system.space)
        owner = paper_system.ring.owner_of(key)

        def proc():
            return (yield paper_system.network.call(
                "D1", owner.node_id, "execute_primitive",
                {"algebra": BGP((KNOWS,)), "key": key, "strategy": "basic",
                 "corr": "dep", "deposit": True},
            ))

        response = paper_system.sim.run_process(proc())
        assert response["mode"] == "deposited"
        assert len(owner.mailbox["dep"]) == response["count"] > 0

    def test_basic_cleans_stale_entries_on_timeout(self, paper_system):
        """Sect. III-D: failed storage nodes are removed from the location
        table after the query timeout."""
        kind, key = key_for_pattern(KNOWS, paper_system.space)
        owner = paper_system.ring.owner_of(key)
        paper_system.network.fail_node("D2")

        def proc():
            return (yield paper_system.network.call(
                "D1", owner.node_id, "execute_primitive",
                {"algebra": BGP((KNOWS,)), "key": key, "strategy": "basic",
                 "corr": "q2"}, timeout=30.0,
            ))

        response = paper_system.sim.run_process(proc())
        assert response["data"] == []
        assert owner.locate(key) == []  # stale entry removed

    def test_route_freq_ordering(self):
        system = build_system()
        n = system.any_index_node()
        from repro.overlay import LocationEntry
        entries = [LocationEntry("D1", 10), LocationEntry("D3", 20), LocationEntry("D4", 15)]
        assert n._route(entries, "freq") == ["D1", "D4", "D3"]
        assert n._route(entries, "chained") == ["D1", "D3", "D4"]
        assert n._route(entries, "freq", end_at="D4") == ["D1", "D3", "D4"]

    def test_get_attached(self, paper_system):
        attached = []
        for node in paper_system.index_nodes.values():
            attached.extend(node.rpc_get_attached(None, "t"))
        assert sorted(attached) == ["D1", "D2", "D3", "D4"]


class TestQueryPeerMailbox:
    def test_deliver_accumulates_by_union(self, paper_system):
        d1 = paper_system.storage_nodes["D1"]
        mu = SolutionMapping({X: IRI("http://x/a")})
        nu = SolutionMapping({X: IRI("http://x/b")})
        d1.rpc_deliver({"corr": "m", "data": [mu]}, "t")
        d1.rpc_deliver({"corr": "m", "data": [mu, nu]}, "t")
        assert d1.mailbox["m"] == {mu, nu}

    def test_combine_join(self, paper_system):
        d1 = paper_system.storage_nodes["D1"]
        a = SolutionMapping({X: IRI("http://x/a")})
        ay = SolutionMapping({X: IRI("http://x/a"), Y: IRI("http://x/y")})
        d1.mailbox["l"] = {a}
        d1.mailbox["r"] = {ay, SolutionMapping({X: IRI("http://x/b")})}
        summary = d1.rpc_combine(
            {"op": "join", "left": "l", "right": "r", "out": "o"}, "t")
        assert summary == {"count": 1}
        assert d1.mailbox["o"] == {ay}
        assert "l" not in d1.mailbox and "r" not in d1.mailbox  # inputs freed

    def test_fetch_discards_by_default(self, paper_system):
        d1 = paper_system.storage_nodes["D1"]
        mu = SolutionMapping({X: IRI("http://x/a")})
        d1.mailbox["f"] = {mu}
        assert d1.rpc_fetch({"corr": "f"}, "t") == [mu]
        assert "f" not in d1.mailbox

    def test_expect_latches_early_notification(self, paper_system):
        d1 = paper_system.storage_nodes["D1"]
        d1.rpc_delivered({"corr": "early", "count": 3}, "t")
        event = d1.expect("early")
        assert event.triggered and event.value == 3

    def test_filter_box(self, paper_system):
        from repro.sparql import parse_query
        from repro.rdf import COMMON_PREFIXES
        q = parse_query(
            'SELECT * WHERE { ?x ?p ?n . FILTER regex(?n, "^A") }', COMMON_PREFIXES)
        condition = q.where.filters[0].expression
        d1 = paper_system.storage_nodes["D1"]
        n_var = Variable("n")
        d1.mailbox["in"] = {
            SolutionMapping({n_var: Literal("Anna")}),
            SolutionMapping({n_var: Literal("Bob")}),
        }
        summary = d1.rpc_filter_box(
            {"corr": "in", "out": "out", "condition": condition}, "t")
        assert summary == {"count": 1}
