"""HybridSystem assembly tests: construction, publication modes, Fig. 1."""

import pytest

from repro.chord import IdentifierSpace
from repro.overlay import (
    FIG1_INDEX_IDS,
    HybridSystem,
    fig1_network,
    key_for_pattern,
)
from repro.rdf import FOAF, TriplePattern, Variable
from repro.workloads import (
    FoafConfig,
    generate_foaf_triples,
    paper_example_partition,
    partition_triples,
)

from helpers import build_system

X, Y = Variable("x"), Variable("y")


class TestConstruction:
    def test_storage_requires_ring(self):
        system = HybridSystem()
        with pytest.raises(RuntimeError):
            system.add_storage_node("D1")

    def test_default_attachment_is_deterministic(self):
        s1 = build_system()
        s2 = build_system()
        assert {k: v.index_node_id for k, v in s1.storage_nodes.items()} == \
               {k: v.index_node_id for k, v in s2.storage_nodes.items()}

    def test_attachment_registered_at_index_node(self, paper_system):
        for storage_id, node in paper_system.storage_nodes.items():
            parent = paper_system.index_nodes[node.index_node_id]
            assert storage_id in parent.attached_storage

    def test_union_graph_is_dataset_union(self, paper_system):
        union = paper_system.union_graph()
        # every local triple appears; duplicates collapse
        total_with_dupes = paper_system.total_triples()
        assert len(union) <= total_with_dupes
        for node in paper_system.storage_nodes.values():
            for t in node.graph:
                assert t in union


class TestPublication:
    def test_fast_and_protocol_publication_agree(self):
        triples = generate_foaf_triples(FoafConfig(num_people=25, seed=3))
        parts = partition_triples(triples, 3, seed=4)

        fast = build_system(num_index=5, parts=parts)

        protocol = HybridSystem(space=IdentifierSpace(32))
        for i in range(5):
            protocol.add_index_node(f"N{i}")
        protocol.build_ring()
        for i, part in enumerate(parts):
            protocol.add_storage_node(f"D{i}", part, publish=True, protocol=True)

        def rows(system):
            out = {}
            for node in system.index_nodes.values():
                for key, cells in node.table.export_range():
                    out[key] = cells
            return out

        assert rows(fast) == rows(protocol)

    def test_protocol_publication_costs_messages(self):
        triples = generate_foaf_triples(FoafConfig(num_people=10, seed=3))
        system = HybridSystem()
        for i in range(4):
            system.add_index_node(f"N{i}")
        system.build_ring()
        before = system.stats.messages
        system.add_storage_node("D0", triples, publish=True, protocol=True)
        assert system.stats.messages > before

    def test_fast_publication_is_free(self):
        triples = generate_foaf_triples(FoafConfig(num_people=10, seed=3))
        system = HybridSystem()
        for i in range(4):
            system.add_index_node(f"N{i}")
        system.build_ring()
        before = system.stats.messages
        system.add_storage_node("D0", triples, publish=True)
        assert system.stats.messages == before

    def test_replication_places_rows_at_successors(self):
        system = build_system(replication_factor=2)
        pattern = TriplePattern(X, FOAF.knows, Y)
        kind, key = key_for_pattern(pattern, system.space)
        owner = system.ring.owner_of(key)
        successor = system.index_nodes[owner.successor.node_id]
        assert successor.replicas.row_dict(key) != {}


class TestFig1:
    def test_topology(self):
        system = fig1_network()
        refs = system.ring.sorted_refs()
        assert [(r.node_id, r.ident) for r in refs] == list(FIG1_INDEX_IDS)
        assert system.ring.is_consistent()

    def test_attachments_match_figure(self):
        system = fig1_network()
        n7 = system.index_nodes["N7"]
        assert n7.attached_storage == ["D1", "D3", "D4"]
        assert system.index_nodes["N15"].attached_storage == ["D2"]

    def test_four_bit_space(self):
        system = fig1_network()
        assert system.space.bits == 4

    def test_with_data_queries_work(self):
        system = fig1_network(paper_example_partition())
        result, report = system.execute(
            "SELECT ?x WHERE { ?x foaf:knows ns:me . }", initiator="D1"
        )
        assert len(result.rows) == 2
