"""The physical-operator plan layer (PR 8).

* compilation: algebra -> operator DAG, for both the local interpreter
  and the distributed engine;
* execution annotation: placements, actual rows, actual bytes land on
  the operators both in legacy and cost mode;
* the frequency-driven cost planner: answers match the legacy engine on
  every Fig. 4-9 query, join order avoids Cartesian products, and the
  combine-site choice is byte-weighted;
* the ``repro explain`` CLI renders the annotated tree with est-vs-actual
  columns.
"""

from __future__ import annotations

import types

import pytest

from repro.cli import main
from repro.query import (
    DistributedExecutor,
    ExecutionOptions,
    compile_local,
    compile_query_plan,
    walk_plan,
)
from repro.query.cost import (
    choose_combine_site,
    est_row_bytes,
    estimate_join_rows,
    order_walk_leaves,
)
from repro.query.physical import (
    BGPWalk,
    ChainShip,
    HashJoin,
    IndexLookup,
    LocalBGPScan,
    Project,
    Ship,
    count_ops,
    execution_root,
    pattern_leaf,
)
from repro.query.plan import ResultHandle
from repro.rdf import COMMON_PREFIXES, serialize_ntriples
from repro.rdf.terms import Variable
from repro.sparql import evaluate_query, parse_query
from repro.sparql.algebra import translate_pattern
from repro.workloads import PAPER_FIG_QUERIES, paper_example_partition

from helpers import build_system

PREFIXED = (
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
    "PREFIX ns: <http://example.org/ns#> "
)


# ----------------------------------------------------------- compilation


def algebra_of(text: str):
    return translate_pattern(parse_query(PREFIXED + text).where)


class TestCompile:
    def test_local_compile_mirrors_algebra(self):
        node = algebra_of(
            "SELECT ?x WHERE { { ?x foaf:knows ?y . ?y foaf:knows ?z . } "
            "UNION { ?x foaf:name ?n . } }")
        plan = compile_local(node)
        kinds = sorted(op.kind for op in walk_plan(plan))
        assert kinds == ["LocalBGPScan", "LocalBGPScan", "Union"]

    def test_distributed_compile_produces_walks_and_leaves(self):
        query = parse_query(PREFIXED + "SELECT ?x ?z WHERE { "
                            "?x foaf:knows ?y . ?y foaf:knows ?z . }")
        plan = compile_query_plan(query, algebra_of(
            "SELECT ?x ?z WHERE { ?x foaf:knows ?y . ?y foaf:knows ?z . }"),
            ExecutionOptions())
        root = execution_root(plan)
        assert isinstance(root, BGPWalk)
        assert all(isinstance(leaf, ChainShip) for leaf in root.children)
        assert all(isinstance(leaf.lookup, IndexLookup)
                   for leaf in root.children)
        # Modifier wrappers sit above the execution root.
        assert isinstance(plan, Project)
        assert count_ops(plan) >= 5

    def test_operator_ids_are_unique_and_dense(self):
        query = parse_query(PREFIXED + "SELECT ?x WHERE { "
                            "?x foaf:knows ?y . OPTIONAL { ?y foaf:name ?n . } }")
        plan = compile_query_plan(
            query, algebra_of("SELECT ?x WHERE { ?x foaf:knows ?y . "
                              "OPTIONAL { ?y foaf:name ?n . } }"),
            ExecutionOptions())
        ids = [op.op_id for op in walk_plan(plan)]
        assert sorted(ids) == list(range(len(ids)))


# ----------------------------------------------- execution annotations


class TestExecutionAnnotations:
    def run(self, text, **options):
        system = build_system()
        executor = DistributedExecutor(system, ExecutionOptions(**options))
        result, report = executor.execute(text, initiator="D1")
        return system, result, report

    def test_legacy_plan_carries_actuals(self):
        _, result, report = self.run(
            PREFIXED + "SELECT ?x ?z WHERE { ?x foaf:knows ?y . "
            "?y foaf:knows ?z . }")
        root = execution_root(report.plan)
        assert root.actual_rows is not None
        assert root.actual_bytes is not None and root.actual_bytes > 0
        assert root.placement is not None
        assert report.plan.actual_rows == report.result_count

    def test_legacy_mode_has_no_estimates_on_roots(self):
        _, _, report = self.run(
            PREFIXED + "SELECT ?x WHERE { ?x foaf:knows ?y . }")
        assert execution_root(report.plan).est_rows is None

    def test_cost_mode_fills_estimates(self):
        _, result, report = self.run(
            PREFIXED + "SELECT ?x ?z WHERE { ?x foaf:knows ?y . "
            "?y foaf:knows ?z . }",
            plan_mode="cost")
        root = execution_root(report.plan)
        assert root.est_rows is not None and root.est_rows > 0
        assert root.est_bytes is not None
        for leaf in root.children:
            assert leaf.est_rows is not None
            assert leaf.plan_strategy is not None

    def test_join_edges_record_shipping(self):
        _, _, report = self.run(
            PREFIXED + "SELECT ?x WHERE { ?x foaf:name ?n . "
            "FILTER regex(?n, \"a\") ?x foaf:knows ?y . }")
        joins = [op for op in walk_plan(report.plan)
                 if isinstance(op, HashJoin)]
        assert joins, "optimizer should split the filtered BGP into a join"
        for edge in joins[0].children:
            assert isinstance(edge, Ship)
            assert edge.placement is not None
            assert ("resident" in edge.detail) or ("shipped_from" in edge.detail)


# ------------------------------------------------------ cost planner


def stub_leaf(text_pattern, frequency):
    bgp = algebra_of(f"SELECT * WHERE {{ {text_pattern} }}")
    leaf = pattern_leaf(bgp.patterns[0])
    leaf.lookup.info = types.SimpleNamespace(total_frequency=frequency)
    return leaf


class TestCostModel:
    def test_est_row_bytes_grows_with_schema(self):
        assert est_row_bytes(1) < est_row_bytes(2) < est_row_bytes(5)
        assert est_row_bytes(0) == est_row_bytes(1)

    def test_estimate_join_rows(self):
        assert estimate_join_rows(10, 3, shared_vars=True) == 3
        assert estimate_join_rows(10, 3, shared_vars=False) == 30

    def test_choose_combine_site_is_byte_weighted(self):
        heavy = ResultHandle("D1", "c1", 100, frozenset({Variable("x")}))
        light = ResultHandle("D2", "c2", 3, frozenset({Variable("x")}))
        # The heavier side stays resident, whichever operand it is.
        assert choose_combine_site(heavy, light) == "D1"
        assert choose_combine_site(light, heavy) == "D1"
        # Few wide rows can outweigh many narrow rows.
        wide = ResultHandle("D3", "c3", 60,
                            frozenset(Variable(n) for n in "abcdefgh"))
        assert choose_combine_site(heavy, wide) == "D3"

    def test_order_walk_leaves_avoids_cartesian_products(self):
        walk = BGPWalk(leaves=[
            stub_leaf("?x <http://example.org/p0> ?y .", 5),
            stub_leaf("?z <http://example.org/p1> ?w .", 1),
            stub_leaf("?y <http://example.org/p2> ?z .", 10),
        ])
        ordered = order_walk_leaves(walk)
        assert len(ordered) == 3
        bound = set(ordered[0].lookup.pattern.variables())
        for leaf in ordered[1:]:
            leaf_vars = set(leaf.lookup.pattern.variables())
            assert bound & leaf_vars, "consecutive patterns must connect"
            bound |= leaf_vars

    def test_plan_mode_is_validated(self):
        with pytest.raises(ValueError):
            ExecutionOptions(plan_mode="bogus")


class TestCostModeAnswers:
    @pytest.mark.parametrize("name", sorted(PAPER_FIG_QUERIES))
    def test_cost_mode_matches_oracle_on_fig_queries(self, name):
        query_text = PAPER_FIG_QUERIES[name]
        system = build_system()
        oracle = evaluate_query(
            parse_query(query_text, COMMON_PREFIXES), system.union_graph())
        for mode in ("legacy", "cost"):
            system = build_system()
            executor = DistributedExecutor(
                system, ExecutionOptions(plan_mode=mode))
            result, report = executor.execute(query_text, initiator="D1")
            assert result.rows == oracle.rows, (name, mode)
            assert report.plan is not None
            assert count_ops(report.plan) > 0


# ------------------------------------------------------------- explain CLI


@pytest.fixture
def data_files(tmp_path):
    paths = []
    for storage_id, triples in paper_example_partition().items():
        path = tmp_path / f"{storage_id}.nt"
        path.write_text(serialize_ntriples(triples), encoding="utf-8")
        paths.append(str(path))
    return paths


class TestExplainCli:
    QUERY = (PREFIXED + "SELECT ?x ?z WHERE { ?x foaf:knows ?y . "
             "?y foaf:knows ?z . }")

    def run(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out

    def test_explain_renders_annotated_tree(self, data_files, capsys):
        code, out = self.run(
            capsys, "explain", self.QUERY,
            *[arg for f in data_files for arg in ("--data", f)])
        assert code == 0
        assert "# physical plan:" in out
        for column in ("operator", "site", "est rows", "actual rows",
                       "est bytes", "actual bytes"):
            assert column in out
        assert "BGPWalk" in out and "IndexLookup" in out
        assert "# totals:" in out and "plan=legacy" in out

    def test_explain_cost_mode_shows_estimates(self, data_files, capsys):
        code, out = self.run(
            capsys, "explain", self.QUERY, "--plan", "cost",
            *[arg for f in data_files for arg in ("--data", f)])
        assert code == 0 and "plan=cost" in out
        walk_line = next(line for line in out.splitlines() if "BGPWalk" in line)
        # In cost mode the walk row carries a numeric estimate.
        assert any(tok.isdigit() for tok in walk_line.split())

    def test_local_scan_kind_exists(self):
        plan = compile_local(algebra_of(
            "SELECT ?x WHERE { ?x foaf:knows ?y . }"))
        assert isinstance(plan, LocalBGPScan)
