"""Property test: plan-rewrite passes preserve semantics.

Random small BGP + FILTER + OPTIONAL / UNION queries over random graphs:
the algebraic optimizer's rewrites (filter decomposition, filter pushing,
frequency reordering) followed by physical compilation and interpretation
must return exactly the solutions of evaluating the unrewritten algebra.
This is the soundness contract every plan-level decision in
``repro.query.physical`` / ``repro.query.cost`` rests on: reorderings and
rewrites may change *where* and *in what order* work happens, never
*what* comes out.
"""

from __future__ import annotations

import zlib

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.query.physical import compile_local, interpret_local, walk_plan
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI
from repro.rdf.triple import Triple
from repro.sparql import parse_query
from repro.sparql.algebra import translate_pattern
from repro.sparql.eval import evaluate_algebra
from repro.sparql.optimizer import optimize

SUBJECTS = [IRI(f"http://example.org/s{i}") for i in range(5)]
PREDICATES = [IRI(f"http://example.org/p{i}") for i in range(3)]
VARS = ["?a", "?b", "?c", "?d"]

triples_st = st.lists(
    st.tuples(
        st.sampled_from(SUBJECTS),
        st.sampled_from(PREDICATES),
        st.sampled_from(SUBJECTS),
    ),
    min_size=0,
    max_size=40,
)


@st.composite
def pattern_text(draw, bound_vars):
    """One triple pattern; positions are variables or concrete terms."""
    def position(pool):
        if draw(st.booleans()):
            var = draw(st.sampled_from(VARS))
            bound_vars.add(var)
            return var
        return f"<{draw(st.sampled_from(pool)).value}>"

    s = position(SUBJECTS)
    p = (draw(st.sampled_from(VARS))
         if draw(st.integers(0, 3)) == 0
         else f"<{draw(st.sampled_from(PREDICATES)).value}>")
    if p.startswith("?"):
        bound_vars.add(p)
    o = position(SUBJECTS)
    return f"{s} {p} {o} ."


@st.composite
def query_text(draw):
    bound: set = set()
    patterns = draw(st.lists(pattern_text(bound), min_size=1, max_size=3))
    body = " ".join(patterns)

    form = draw(st.sampled_from(["plain", "filter", "optional", "union"]))
    if form == "filter" and len(bound) >= 1:
        vs = sorted(bound)
        left = draw(st.sampled_from(vs))
        if len(vs) >= 2 and draw(st.booleans()):
            right = draw(st.sampled_from([v for v in vs if v != left]))
            body += f" FILTER ({left} != {right})"
        else:
            target = draw(st.sampled_from(SUBJECTS))
            body += f" FILTER ({left} = <{target.value}>)"
    elif form == "optional":
        extra = draw(pattern_text(bound))
        body += f" OPTIONAL {{ {extra} }}"
    elif form == "union":
        other = " ".join(draw(st.lists(pattern_text(set()),
                                       min_size=1, max_size=2)))
        body = f"{{ {body} }} UNION {{ {other} }}"
    return f"SELECT * WHERE {{ {body} }}"


def build_graph(raw):
    graph = Graph()
    for s, p, o in raw:
        graph.add(Triple(s, p, o))
    return graph


def _stable_estimate(pattern):
    """A deterministic pseudo-random cardinality estimate: exercises
    arbitrary reorderings without depending on hash randomization."""
    return (zlib.crc32(str(pattern).encode("utf-8")), str(pattern))


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(raw=triples_st, text=query_text(), reorder=st.booleans())
def test_rewritten_plans_return_the_unrewritten_solutions(raw, text, reorder):
    graph = build_graph(raw)
    algebra = translate_pattern(parse_query(text).where)
    reference = evaluate_algebra(algebra, graph)

    rewritten = optimize(
        algebra,
        estimate=_stable_estimate if reorder else None,
        reorder=reorder,
    )
    assert evaluate_algebra(rewritten, graph) == reference

    # The physical compile/interpret pair is itself a pure pipeline:
    # running the same compiled plan twice returns the same set.
    plan = compile_local(rewritten)
    assert interpret_local(plan, graph) == reference
    assert interpret_local(plan, graph) == reference


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(raw=triples_st, text=query_text())
def test_compiled_plans_record_actual_rows(raw, text):
    graph = build_graph(raw)
    algebra = translate_pattern(parse_query(text).where)
    plan = compile_local(algebra)
    out = interpret_local(plan, graph)
    assert plan.actual_rows == len(out)
    assert all(op.actual_rows is not None for op in walk_plan(plan))
