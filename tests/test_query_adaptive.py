"""Adaptive (cost-based) strategy selection — the Sect. V planner."""

import pytest

from repro.net import LinkModel
from repro.overlay import LocationEntry
from repro.query import (
    CostModel,
    DistributedExecutor,
    ExecutionOptions,
    PrimitiveStrategy,
    choose_strategy,
)
from repro.workloads import FoafConfig, generate_foaf_triples, partition_triples

from helpers import build_system

LINK = LinkModel(latency=0.010, bandwidth=1_000_000.0)


def entries(*freqs):
    return [LocationEntry(f"D{i}", f) for i, f in enumerate(freqs)]


class TestCostModel:
    def test_single_provider_chain_cheaper_in_bytes(self):
        # One provider: FREQ ships the result once; BASIC ships it twice
        # (provider -> assembly -> initiator).
        costs = {c.strategy: c for c in CostModel(LINK).predict(entries(100))}
        assert costs[PrimitiveStrategy.FREQ].bytes < costs[PrimitiveStrategy.BASIC].bytes

    def test_many_uniform_providers_basic_cheaper_in_bytes(self):
        costs = {c.strategy: c for c in CostModel(LINK).predict(entries(*[50] * 16))}
        assert costs[PrimitiveStrategy.BASIC].bytes < costs[PrimitiveStrategy.FREQ].bytes

    def test_basic_always_predicted_at_least_as_fast_for_many_providers(self):
        costs = {c.strategy: c for c in CostModel(LINK).predict(entries(*[50] * 16))}
        assert costs[PrimitiveStrategy.BASIC].time <= costs[PrimitiveStrategy.FREQ].time

    def test_dedup_prior_lowers_chain_cost(self):
        dup = CostModel(LINK, dedup_ratio=0.3).predict(entries(40, 40, 40))
        nodup = CostModel(LINK, dedup_ratio=1.0).predict(entries(40, 40, 40))
        chain_dup = next(c for c in dup if c.strategy is PrimitiveStrategy.FREQ)
        chain_nodup = next(c for c in nodup if c.strategy is PrimitiveStrategy.FREQ)
        assert chain_dup.bytes < chain_nodup.bytes

    def test_empty_row(self):
        strategy, costs = choose_strategy([], LINK, time_weight=0.5)
        assert strategy is PrimitiveStrategy.BASIC
        assert costs[0].bytes == 0.0


class TestChooseStrategy:
    def test_bytes_objective_prefers_chain_for_few_skewed_providers(self):
        strategy, _ = choose_strategy(entries(5, 10, 100), LINK, time_weight=0.0)
        assert strategy is PrimitiveStrategy.FREQ

    def test_time_objective_prefers_basic_for_many_providers(self):
        strategy, _ = choose_strategy(entries(*[30] * 12), LINK, time_weight=1.0)
        assert strategy is PrimitiveStrategy.BASIC

    def test_bytes_objective_prefers_basic_for_many_uniform_providers(self):
        strategy, _ = choose_strategy(entries(*[30] * 12), LINK, time_weight=0.0)
        assert strategy is PrimitiveStrategy.BASIC

    def test_weight_validated(self):
        with pytest.raises(ValueError):
            choose_strategy(entries(1), LINK, time_weight=1.5)


class TestAdaptiveExecution:
    @pytest.fixture
    def system(self):
        triples = generate_foaf_triples(FoafConfig(num_people=60, seed=71))
        parts = partition_triples(triples, 4, overlap=0.2, seed=72)
        return build_system(num_index=8, parts=parts)

    def test_adaptive_matches_oracle(self, system):
        from repro.rdf import COMMON_PREFIXES
        from repro.sparql import evaluate_query, parse_query

        query = "SELECT ?a ?b WHERE { ?a foaf:knows ?b . }"
        executor = DistributedExecutor(system, ExecutionOptions(
            primitive_strategy=PrimitiveStrategy.ADAPTIVE, time_weight=0.3,
        ))
        result, report = executor.execute(query, initiator="D0")
        oracle = evaluate_query(parse_query(query, COMMON_PREFIXES), system.union_graph())
        assert result.rows == oracle.rows
        assert any("adaptive ->" in n for n in report.notes)

    def test_adaptive_never_worse_than_worst_fixed_strategy(self, system):
        query = "SELECT ?a ?b WHERE { ?a foaf:knows ?b . }"
        measured = {}
        for strategy in (PrimitiveStrategy.BASIC, PrimitiveStrategy.FREQ,
                         PrimitiveStrategy.ADAPTIVE):
            executor = DistributedExecutor(system, ExecutionOptions(
                primitive_strategy=strategy, time_weight=0.0, dedup_prior=0.85,
            ))
            _, report = executor.execute(query, initiator="D0")
            measured[strategy] = report.bytes_total
        worst_fixed = max(measured[PrimitiveStrategy.BASIC],
                          measured[PrimitiveStrategy.FREQ])
        assert measured[PrimitiveStrategy.ADAPTIVE] <= worst_fixed
