"""Distributed executor tests: correctness against the local oracle over
the union dataset, for every strategy combination and query family."""

import itertools

import pytest

from repro.query import (
    ConjunctionMode,
    DistributedExecutor,
    ExecutionOptions,
    JoinSitePolicy,
    PrimitiveStrategy,
    QueryFailed,
)
from repro.rdf import COMMON_PREFIXES, PatternShape
from repro.sparql import evaluate_query, parse_query
from repro.workloads import QueryWorkload



def assert_matches_oracle(system, query_text, initiator="D1", **options):
    query = parse_query(query_text, COMMON_PREFIXES)
    oracle = evaluate_query(query, system.union_graph())
    executor = DistributedExecutor(system, **options)
    result, report = executor.execute(query_text, initiator=initiator)
    if oracle.boolean is not None:
        assert result.boolean == oracle.boolean
    elif oracle.graph is not None:
        assert result.graph == oracle.graph
    else:
        assert result.rows == oracle.rows
    return result, report


QUERIES = {
    "primitive_sPo": "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }",
    "primitive_SPo": "SELECT ?y WHERE { <http://example.org/people/anna> foaf:knows ?y . }",
    "primitive_spO": "SELECT ?x ?p WHERE { ?x ?p <http://example.org/people/carl> . }",
    "conjunction": """SELECT ?x ?y ?z WHERE {
        ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y . }""",
    "three_pattern": """SELECT * WHERE {
        ?x foaf:name ?n . ?x foaf:knows ?y . ?y foaf:nick ?k . }""",
    "optional": """SELECT * WHERE {
        ?x foaf:name ?n . OPTIONAL { ?x foaf:nick ?k . } }""",
    "union": """SELECT ?x WHERE {
        { ?x foaf:mbox <mailto:abc@example.org> . } UNION { ?x foaf:name "Smith" . } }""",
    "filter": """SELECT * WHERE {
        ?x foaf:name ?n . FILTER regex(?n, "Smith") }""",
    "filter_conjunction": """SELECT * WHERE {
        ?x foaf:name ?n ; foaf:knows ?y . FILTER regex(?n, "Smith") }""",
    "fig9": """SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name ; ns:knowsNothingAbout ?y .
        FILTER regex(?name, "Smith")
        OPTIONAL { ?y foaf:knows ?z . } }""",
    "order_limit": "SELECT ?x WHERE { ?x foaf:knows ?y . } ORDER BY DESC(?x) LIMIT 3",
    "distinct": "SELECT DISTINCT ?x WHERE { ?x foaf:knows ?y . }",
}


class TestCorrectnessAgainstOracle:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_default_options(self, paper_system, name):
        assert_matches_oracle(paper_system, QUERIES[name])

    @pytest.mark.parametrize("strategy", PrimitiveStrategy)
    def test_primitive_strategies(self, paper_system, strategy):
        assert_matches_oracle(
            paper_system, QUERIES["primitive_sPo"], primitive_strategy=strategy
        )

    @pytest.mark.parametrize("mode", ConjunctionMode)
    def test_conjunction_modes(self, paper_system, mode):
        assert_matches_oracle(
            paper_system, QUERIES["conjunction"], conjunction_mode=mode
        )

    @pytest.mark.parametrize("policy", JoinSitePolicy)
    def test_join_site_policies(self, paper_system, policy):
        assert_matches_oracle(
            paper_system, QUERIES["optional"], join_site_policy=policy
        )

    def test_unoptimized_matches_too(self, paper_system):
        assert_matches_oracle(paper_system, QUERIES["fig9"], optimize=False)

    def test_full_scan_broadcast(self, paper_system):
        result, report = assert_matches_oracle(
            paper_system, "SELECT * WHERE { ?s ?p ?o . }"
        )
        assert any("broadcast" in n for n in report.notes)

    def test_ask_and_construct(self, paper_system):
        assert_matches_oracle(paper_system, "ASK { ?x foaf:nick ?n . }")
        assert_matches_oracle(
            paper_system,
            "CONSTRUCT { ?x ns:knownBy ns:me . } WHERE { ?x foaf:knows ns:me . }",
        )

    def test_initiator_can_be_index_node(self, paper_system):
        assert_matches_oracle(paper_system, QUERIES["primitive_sPo"], initiator="N0")

    def test_every_storage_node_can_initiate(self, paper_system):
        for storage_id in paper_system.storage_nodes:
            assert_matches_oracle(
                paper_system, QUERIES["primitive_SPo"], initiator=storage_id
            )


class TestRandomizedWorkloads:
    def test_foaf_system_all_strategies(self, foaf_system):
        wl = QueryWorkload(list(foaf_system.union_graph()), seed=13)
        queries = [wl.primitive(shape) for shape in PatternShape]
        queries += [wl.conjunction(2), wl.optional(), wl.union(), wl.filtered()]
        combos = itertools.product(PrimitiveStrategy, ConjunctionMode)
        for strategy, mode in combos:
            for q in queries:
                assert_matches_oracle(
                    foaf_system, q, initiator="D0",
                    primitive_strategy=strategy, conjunction_mode=mode,
                )


class TestReports:
    def test_report_counts_traffic(self, paper_system):
        _, report = assert_matches_oracle(paper_system, QUERIES["primitive_sPo"])
        assert report.messages > 0
        assert report.bytes_total > 0
        assert report.response_time > 0

    def test_reports_are_per_query(self, paper_system):
        executor = DistributedExecutor(paper_system)
        _, r1 = executor.execute(QUERIES["primitive_sPo"], initiator="D1")
        _, r2 = executor.execute(QUERIES["primitive_SPo"], initiator="D1")
        # the second, more selective query must not inherit the first's bytes
        assert r2.bytes_total < r1.bytes_total

    def test_result_count_set(self, paper_system):
        result, report = assert_matches_oracle(paper_system, QUERIES["distinct"])
        assert report.result_count == len(result.rows)

    def test_result_count_select_empty(self, paper_system):
        executor = DistributedExecutor(paper_system)
        result, report = executor.execute(
            "SELECT ?x WHERE { ?x foaf:knows <http://example.org/people/nobody> . }",
            initiator="D1")
        assert result.rows == []
        assert report.result_count == 0

    def test_result_count_ask(self, paper_system):
        executor = DistributedExecutor(paper_system)
        _, yes = executor.execute("ASK { ?x foaf:knows ?y . }", initiator="D1")
        assert yes.result_count == 1
        result, no = executor.execute(
            "ASK { ?x foaf:knows <http://example.org/people/nobody> . }",
            initiator="D1")
        assert result.boolean is False
        assert no.result_count == 0

    def test_result_count_construct(self, paper_system):
        executor = DistributedExecutor(paper_system)
        result, report = executor.execute(
            "CONSTRUCT { ?x ns:knownBy ns:me . } WHERE { ?x foaf:knows ns:me . }",
            initiator="D1")
        assert report.result_count == len(result.graph) == 2
        # Empty CONSTRUCT counts zero triples, not a phantom row.
        result, report = executor.execute(
            "CONSTRUCT { ?x ns:y ns:z . } WHERE "
            "{ ?x foaf:knows <http://example.org/people/nobody> . }",
            initiator="D1")
        assert report.result_count == len(result.graph) == 0

    def test_result_count_describe(self, paper_system):
        executor = DistributedExecutor(paper_system)
        result, report = executor.execute(
            "DESCRIBE <http://example.org/people/anna>", initiator="D1")
        assert result.graph is not None
        assert report.result_count == len(result.graph) > 0

    def test_mailboxes_drained_after_query(self, paper_system):
        executor = DistributedExecutor(paper_system)
        executor.execute(QUERIES["fig9"], initiator="D1")
        executor.execute(QUERIES["conjunction"], initiator="D1")
        for node in list(paper_system.storage_nodes.values()) + list(
            paper_system.index_nodes.values()
        ):
            assert node.mailbox == {}, f"{node.node_id} leaked {node.mailbox}"


class TestErrors:
    def test_unknown_initiator(self, paper_system):
        executor = DistributedExecutor(paper_system)
        with pytest.raises(Exception):
            executor.execute("SELECT ?x WHERE { ?x foaf:knows ?y . }", initiator="ghost")

    def test_options_and_overrides_exclusive(self, paper_system):
        with pytest.raises(ValueError):
            DistributedExecutor(
                paper_system, ExecutionOptions(), optimize=False
            )

    def test_broadcast_can_be_disabled(self, paper_system):
        executor = DistributedExecutor(paper_system, allow_broadcast=False)
        with pytest.raises(QueryFailed):
            executor.execute("SELECT * WHERE { ?s ?p ?o . }", initiator="D1")

    def test_from_clause_rejected_distributedly(self, paper_system):
        """Sect. IV-A: the ad-hoc dataset is always the union of all
        providers; FROM cannot be honored and must fail loudly."""
        executor = DistributedExecutor(paper_system)
        with pytest.raises(QueryFailed, match="union of all"):
            executor.execute(
                "SELECT ?x FROM <http://g/1> WHERE { ?x foaf:knows ?y . }",
                initiator="D1",
            )

    def test_graph_pattern_rejected_distributedly(self, paper_system):
        executor = DistributedExecutor(paper_system)
        with pytest.raises(QueryFailed, match="named graphs"):
            executor.execute(
                "SELECT ?x WHERE { GRAPH <http://g> { ?x foaf:knows ?y . } }",
                initiator="D1",
            )
