"""Failure injection during distributed query execution: broken chains,
fall-back to BASIC, stale-entry cleanup, combined churn."""

import pytest

from repro.overlay import fail_storage_node, key_for_pattern
from repro.query import DistributedExecutor, ExecutionOptions, PrimitiveStrategy
from repro.rdf import COMMON_PREFIXES, FOAF, TriplePattern, Variable
from repro.sparql import evaluate_query, parse_query
from repro.workloads import FoafConfig, generate_foaf_triples, partition_triples

from helpers import build_system

X, Y = Variable("x"), Variable("y")
QUERY = "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"


def spread_system():
    """knows-triples on every node so chains have length > 1."""
    triples = generate_foaf_triples(FoafConfig(num_people=40, seed=21))
    parts = partition_triples(triples, 4, overlap=0.3, seed=22)
    return build_system(num_index=6, parts=parts)


def surviving_oracle(system):
    """What a perfect system would answer using only live providers."""
    from repro.rdf import Graph

    union = Graph()
    for node in system.storage_nodes.values():
        if node.alive:
            union.update(iter(node.graph))
    return evaluate_query(parse_query(QUERY, COMMON_PREFIXES), union)


class TestChainBreakage:
    @pytest.mark.parametrize("strategy", [PrimitiveStrategy.CHAINED, PrimitiveStrategy.FREQ])
    def test_broken_chain_falls_back_to_basic(self, strategy):
        system = spread_system()
        executor = DistributedExecutor(
            system,
            ExecutionOptions(primitive_strategy=strategy, delivery_timeout=1.0),
        )
        fail_storage_node(system, "D2")
        result, report = executor.execute(QUERY, initiator="D0")
        assert report.retries >= 1
        oracle = surviving_oracle(system)
        assert result.rows == oracle.rows

    def test_fallback_cleans_stale_entries(self):
        system = spread_system()
        executor = DistributedExecutor(
            system,
            ExecutionOptions(
                primitive_strategy=PrimitiveStrategy.CHAINED, delivery_timeout=1.0
            ),
        )
        fail_storage_node(system, "D2")
        executor.execute(QUERY, initiator="D0")
        kind, key = key_for_pattern(TriplePattern(X, FOAF.knows, Y), system.space)
        owner = system.ring.owner_of(key)
        assert all(e.storage_id != "D2" for e in owner.locate(key))

    def test_second_query_needs_no_retry(self):
        """After cleanup the route no longer contains the dead node."""
        system = spread_system()
        executor = DistributedExecutor(
            system,
            ExecutionOptions(
                primitive_strategy=PrimitiveStrategy.CHAINED, delivery_timeout=1.0
            ),
        )
        fail_storage_node(system, "D2")
        executor.execute(QUERY, initiator="D0")
        result, report = executor.execute(QUERY, initiator="D0")
        assert report.retries == 0
        assert result.rows == surviving_oracle(system).rows


class TestBasicStrategyUnderFailure:
    def test_basic_skips_dead_provider(self):
        system = spread_system()
        executor = DistributedExecutor(
            system, ExecutionOptions(primitive_strategy=PrimitiveStrategy.BASIC)
        )
        fail_storage_node(system, "D1")
        result, report = executor.execute(QUERY, initiator="D0")
        assert result.rows == surviving_oracle(system).rows

    def test_multiple_dead_providers(self):
        system = spread_system()
        executor = DistributedExecutor(
            system, ExecutionOptions(primitive_strategy=PrimitiveStrategy.BASIC)
        )
        fail_storage_node(system, "D1")
        fail_storage_node(system, "D3")
        result, _ = executor.execute(QUERY, initiator="D0")
        assert result.rows == surviving_oracle(system).rows


class TestConjunctionUnderFailure:
    def test_conjunction_with_dead_provider(self):
        system = spread_system()
        executor = DistributedExecutor(
            system, ExecutionOptions(delivery_timeout=1.0)
        )
        fail_storage_node(system, "D3")
        query = """SELECT * WHERE {
            ?x foaf:name ?n . ?x foaf:knows ?y . }"""
        result, report = executor.execute(query, initiator="D0")
        from repro.rdf import Graph

        union = Graph()
        for node in system.storage_nodes.values():
            if node.alive:
                union.update(iter(node.graph))
        oracle = evaluate_query(parse_query(query, COMMON_PREFIXES), union)
        assert result.rows == oracle.rows
