"""Join-site selection tests: Move-Small / Query-Site / Third-Site
behaviour and shipping mechanics."""


from repro.query import DistributedExecutor, JoinSitePolicy, ResultHandle
from repro.query.executor import ExecutionContext, ExecutionReport
from repro.query.join_site import combine_handles, pick_join_site, ship_handle
from repro.rdf import IRI, Variable
from repro.sparql.solutions import SolutionMapping

X, Y = Variable("x"), Variable("y")


def make_ctx(system, initiator="D1", **options):
    executor = DistributedExecutor(system, **options)
    return ExecutionContext(
        system, initiator, executor.options, ExecutionReport(), executor.load
    )


def deposit(system, site, corr, mappings):
    node = system.network.node(site)
    node.mailbox[corr] = set(mappings)
    return ResultHandle(site, corr, len(node.mailbox[corr]))


def mus(n, var=X):
    return [SolutionMapping({var: IRI(f"http://x/t{i}")}) for i in range(n)]


class TestPickSite:
    def test_move_small_prefers_larger_operand(self, paper_system):
        ctx = make_ctx(paper_system, join_site_policy=JoinSitePolicy.MOVE_SMALL)
        small = ResultHandle("D2", "a", 2)
        large = ResultHandle("D3", "b", 10)
        assert pick_join_site(ctx, small, large) == "D3"
        assert pick_join_site(ctx, large, small) == "D3"

    def test_move_small_tie_keeps_left(self, paper_system):
        ctx = make_ctx(paper_system, join_site_policy=JoinSitePolicy.MOVE_SMALL)
        a, b = ResultHandle("D2", "a", 5), ResultHandle("D3", "b", 5)
        assert pick_join_site(ctx, a, b) == "D2"

    def test_query_site_is_initiator(self, paper_system):
        ctx = make_ctx(paper_system, join_site_policy=JoinSitePolicy.QUERY_SITE)
        a, b = ResultHandle("D2", "a", 1), ResultHandle("D3", "b", 100)
        assert pick_join_site(ctx, a, b) == "D1"

    def test_third_site_balances_load(self, paper_system):
        ctx = make_ctx(paper_system, join_site_policy=JoinSitePolicy.THIRD_SITE)
        a, b = ResultHandle("D2", "a", 1), ResultHandle("D3", "b", 1)
        first = pick_join_site(ctx, a, b)
        ctx.load[first] += 5
        second = pick_join_site(ctx, a, b)
        assert second != first  # QoS signal steers to the less-loaded node

    def test_third_site_skips_dead_nodes(self, paper_system):
        ctx = make_ctx(paper_system, join_site_policy=JoinSitePolicy.THIRD_SITE)
        a, b = ResultHandle("D2", "a", 1), ResultHandle("D3", "b", 1)
        paper_system.network.fail_node("D1")
        site = pick_join_site(ctx, a, b)
        assert site != "D1"


class TestShipping:
    def test_ship_noop_when_already_there(self, paper_system):
        ctx = make_ctx(paper_system)
        handle = deposit(paper_system, "D2", "c", mus(3))
        before = paper_system.stats.messages

        def proc():
            return (yield from ship_handle(ctx, handle, "D2"))

        shipped = paper_system.sim.run_process(proc())
        assert shipped == handle
        assert paper_system.stats.messages == before

    def test_ship_from_initiator(self, paper_system):
        ctx = make_ctx(paper_system)
        handle = ctx.local_deposit("c", mus(3))

        def proc():
            return (yield from ship_handle(ctx, handle, "D3"))

        shipped = paper_system.sim.run_process(proc())
        assert shipped.site == "D3"
        assert len(paper_system.storage_nodes["D3"].mailbox["c"]) == 3
        assert "c" not in ctx.initiator_peer.mailbox

    def test_ship_between_remote_sites(self, paper_system):
        ctx = make_ctx(paper_system)
        handle = deposit(paper_system, "D2", "c", mus(4))

        def proc():
            return (yield from ship_handle(ctx, handle, "D4"))

        shipped = paper_system.sim.run_process(proc())
        assert shipped.site == "D4" and shipped.count == 4
        assert "c" not in paper_system.storage_nodes["D2"].mailbox
        assert len(paper_system.storage_nodes["D4"].mailbox["c"]) == 4


class TestCombine:
    def test_join_at_remote_site(self, paper_system):
        ctx = make_ctx(paper_system)
        left = deposit(paper_system, "D2", "l",
                       [SolutionMapping({X: IRI("http://x/a")})])
        right = deposit(paper_system, "D2", "r",
                        [SolutionMapping({X: IRI("http://x/a"), Y: IRI("http://x/b")}),
                         SolutionMapping({X: IRI("http://x/c")})])

        def proc():
            return (yield from combine_handles(ctx, "join", left, right, site="D2"))

        out = paper_system.sim.run_process(proc())
        assert out.site == "D2" and out.count == 1

    def test_combine_at_initiator_is_local(self, paper_system):
        ctx = make_ctx(paper_system, join_site_policy=JoinSitePolicy.QUERY_SITE)
        left = ctx.local_deposit("l", mus(2))
        right = ctx.local_deposit("r", mus(2))
        before = paper_system.stats.messages

        def proc():
            return (yield from combine_handles(ctx, "union", left, right))

        out = paper_system.sim.run_process(proc())
        assert out.count == 2  # same mappings, union dedups
        assert paper_system.stats.messages == before  # fully local

    def test_move_small_ships_fewer_bytes_than_opposite(self, paper_system):
        """Shipping the small operand must cost less than shipping the
        large one — the rationale of Move-Small."""
        ctx = make_ctx(paper_system)
        small = deposit(paper_system, "D2", "s", mus(2))
        large = deposit(paper_system, "D3", "b", mus(40, var=Y))

        cp = paper_system.stats.checkpoint()

        def proc():
            return (yield from combine_handles(ctx, "join", small, large))

        out = paper_system.sim.run_process(proc())
        move_small_bytes = paper_system.stats.delta(cp).bytes
        assert out.site == "D3"

        # opposite direction: force the join at the small side's site
        small2 = deposit(paper_system, "D2", "s2", mus(2))
        large2 = deposit(paper_system, "D3", "b2", mus(40, var=Y))
        cp2 = paper_system.stats.checkpoint()

        def proc2():
            return (yield from combine_handles(ctx, "join", small2, large2, site="D2"))

        paper_system.sim.run_process(proc2())
        opposite_bytes = paper_system.stats.delta(cp2).bytes
        assert move_small_bytes < opposite_bytes

    def test_load_counter_increments(self, paper_system):
        ctx = make_ctx(paper_system)
        left = deposit(paper_system, "D2", "l", mus(1))
        right = deposit(paper_system, "D2", "r", mus(1))

        def proc():
            return (yield from combine_handles(ctx, "union", left, right, site="D2"))

        paper_system.sim.run_process(proc())
        assert ctx.load["D2"] == 1
