"""Planner tests: PatternInfo, index consultation, shared-site choice."""


from repro.overlay import KeyKind, LocationEntry
from repro.query import DistributedExecutor, choose_shared_site, subquery_algebra
from repro.query.executor import ExecutionContext, ExecutionReport
from repro.query.plan import PatternInfo
from repro.rdf import COMMON_PREFIXES, FOAF, NS, TriplePattern, Variable
from repro.sparql import BGP, Filter, parse_query

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def make_ctx(system, initiator="D1", **options):
    executor = DistributedExecutor(system, **options)
    return ExecutionContext(
        system, initiator, executor.options, ExecutionReport(), executor.load
    )


def info(pattern, entries, condition=None):
    return PatternInfo(
        pattern=pattern, key_kind=KeyKind.P, key=1, owner="N0",
        entries=tuple(LocationEntry(s, f) for s, f in entries),
        condition=condition,
    )


class TestLocate:
    def test_locate_returns_row_and_owner(self, paper_system):
        ctx = make_ctx(paper_system)
        pattern = TriplePattern(X, FOAF.knows, Y)

        result = paper_system.sim.run_process(ctx.locate(pattern))
        assert result.owner in paper_system.index_nodes
        assert [e.storage_id for e in result.entries] == ["D2"]
        assert result.key_kind is KeyKind.P

    def test_locate_unbound_pattern_is_broadcast(self, paper_system):
        ctx = make_ctx(paper_system)
        pattern = TriplePattern(X, Y, Z)
        result = paper_system.sim.run_process(ctx.locate(pattern))
        assert result.owner is None and result.entries == ()

    def test_locate_from_index_node_owning_key_is_free(self, paper_system):
        pattern = TriplePattern(X, FOAF.knows, Y)
        from repro.overlay import key_for_pattern

        kind, key = key_for_pattern(pattern, paper_system.space)
        owner = paper_system.ring.owner_of(key)
        ctx = make_ctx(paper_system, initiator=owner.node_id)
        before = paper_system.stats.messages
        result = paper_system.sim.run_process(ctx.locate(pattern))
        assert paper_system.stats.messages == before  # zero messages
        assert result.owner == owner.node_id

    def test_total_frequency_is_sum(self):
        pi = info(TriplePattern(X, FOAF.knows, Y), [("D1", 10), ("D3", 20)])
        assert pi.total_frequency == 30
        assert pi.frequency_of("D3") == 20
        assert pi.frequency_of("D9") == 0


class TestSubqueryAlgebra:
    def test_plain_pattern(self):
        pi = info(TriplePattern(X, FOAF.knows, Y), [("D1", 1)])
        alg = subquery_algebra(pi)
        assert alg == BGP((pi.pattern,))

    def test_with_condition_wraps_filter(self):
        q = parse_query(
            'SELECT * WHERE { ?x foaf:name ?n . FILTER regex(?n, "S") }',
            COMMON_PREFIXES,
        )
        condition = q.where.filters[0].expression
        pi = info(TriplePattern(X, FOAF.name, Variable("n")), [("D1", 1)],
                  condition=condition)
        alg = subquery_algebra(pi)
        assert isinstance(alg, Filter) and alg.condition is condition


class TestSharedSite:
    def test_paper_example_overlap(self):
        """S1 = {D1, D3, D4}, S2 = {D1, D2} -> join at D1 (Sect. IV-D)."""
        p1 = info(TriplePattern(X, FOAF.knows, Z), [("D1", 5), ("D3", 8), ("D4", 2)])
        p2 = info(TriplePattern(X, NS.knowsNothingAbout, Y), [("D1", 3), ("D2", 4)])
        assert choose_shared_site([p1, p2]) == "D1"

    def test_multiple_shared_prefers_heavier(self):
        """S1 = {D1, D2, D4}, S2 = {D1, D2}: both D1 and D2 qualify; the
        one holding more matching triples wins (its data never ships)."""
        p1 = info(TriplePattern(X, FOAF.knows, Z), [("D1", 5), ("D2", 50), ("D4", 2)])
        p2 = info(TriplePattern(X, NS.knowsNothingAbout, Y), [("D1", 3), ("D2", 4)])
        assert choose_shared_site([p1, p2]) == "D2"

    def test_no_overlap_returns_none(self):
        p1 = info(TriplePattern(X, FOAF.knows, Z), [("D1", 5)])
        p2 = info(TriplePattern(X, NS.knowsNothingAbout, Y), [("D2", 3)])
        assert choose_shared_site([p1, p2]) is None

    def test_single_pattern_returns_its_provider(self):
        p1 = info(TriplePattern(X, FOAF.knows, Z), [("D1", 5), ("D2", 9)])
        assert choose_shared_site([p1]) == "D2"

    def test_empty(self):
        assert choose_shared_site([]) is None
        assert choose_shared_site([info(TriplePattern(X, FOAF.knows, Z), [])]) is None


class TestLiveVars:
    """The projection-pushdown analysis (PR 2): which variables must
    survive every ship."""

    @staticmethod
    def live(text):
        from repro.query.plan import compute_live_vars
        from repro.sparql import translate_pattern

        query = parse_query(text, COMMON_PREFIXES)
        return compute_live_vars(query, translate_pattern(query.where))

    def test_plain_select_disables_pruning(self):
        # Non-DISTINCT SELECT preserves duplicate projected rows; dropping
        # any variable could merge rows, so the pass refuses.
        assert self.live(
            "SELECT ?n WHERE { ?x foaf:knows ?y . ?y foaf:name ?n . }"
        ) is None

    def test_distinct_keeps_output_and_join_vars_only(self):
        live = self.live("""SELECT DISTINCT ?n WHERE {
            ?x foaf:knows ?y . ?y foaf:knows ?z . ?z foaf:name ?n . }""")
        assert live == {Variable("n"), Variable("y"), Variable("z")}
        assert Variable("x") not in live

    def test_filter_vars_are_live(self):
        live = self.live("""SELECT DISTINCT ?x WHERE {
            ?x foaf:name ?name . FILTER regex(?name, "Smith") }""")
        assert Variable("name") in live

    def test_order_by_vars_are_live(self):
        live = self.live("""SELECT DISTINCT ?y WHERE {
            ?x foaf:knows ?y . } ORDER BY ?x""")
        assert Variable("x") in live

    def test_ask_keeps_only_structural_vars(self):
        live = self.live(
            "ASK { ?x foaf:knows ?y . ?y foaf:name ?n . }"
        )
        assert live == {Variable("y")}

    def test_select_star_keeps_everything(self):
        live = self.live(
            "SELECT DISTINCT * WHERE { ?x foaf:knows ?y . }"
        )
        assert live == {Variable("x"), Variable("y")}

    def test_combine_vars_table(self):
        from repro.query.plan import combine_vars

        l, r = frozenset({X, Y}), frozenset({Y, Z})
        assert combine_vars("join", l, r) == l | r
        assert combine_vars("union", l, r) == l & r
        assert combine_vars("leftjoin", l, r) == l
        assert combine_vars("minus", l, r) == l
        assert combine_vars("join", None, r) is None
        assert combine_vars("union", l, None) is None
