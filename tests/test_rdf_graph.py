"""Unit and property tests for the indexed graph store."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, IRI, Literal, Triple, TriplePattern, Variable

S = [IRI(f"http://x/s{i}") for i in range(5)]
P = [IRI(f"http://x/p{i}") for i in range(3)]
O = [IRI(f"http://x/o{i}") for i in range(5)] + [Literal(f"v{i}") for i in range(3)]
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def make_graph():
    g = Graph()
    g.add(Triple(S[0], P[0], O[0]))
    g.add(Triple(S[0], P[0], O[1]))
    g.add(Triple(S[0], P[1], O[0]))
    g.add(Triple(S[1], P[0], O[0]))
    g.add(Triple(S[1], P[2], Literal("v0")))
    return g


class TestSetSemantics:
    def test_add_is_idempotent(self):
        g = Graph()
        t = Triple(S[0], P[0], O[0])
        assert g.add(t) is True
        assert g.add(t) is False
        assert len(g) == 1

    def test_contains(self):
        g = make_graph()
        assert Triple(S[0], P[0], O[0]) in g
        assert Triple(S[2], P[0], O[0]) not in g

    def test_discard(self):
        g = make_graph()
        assert g.discard(Triple(S[0], P[0], O[0])) is True
        assert Triple(S[0], P[0], O[0]) not in g
        assert g.discard(Triple(S[0], P[0], O[0])) is False
        assert len(g) == 4

    def test_discard_prunes_empty_index_rows(self):
        g = Graph()
        t = Triple(S[0], P[0], O[0])
        g.add(t)
        g.discard(t)
        assert S[0] not in g.subjects()
        assert P[0] not in g.predicates()
        assert O[0] not in g.objects()

    def test_update_counts_new_only(self):
        g = make_graph()
        added = g.update([Triple(S[0], P[0], O[0]), Triple(S[3], P[0], O[0])])
        assert added == 1

    def test_update_validates_before_mutating(self):
        """A non-Triple anywhere in the batch raises before any insert —
        update is all-or-nothing, like add is for one triple."""
        g = Graph()
        bad = [Triple(S[0], P[0], O[0]), Triple(S[1], P[0], O[0]), "oops"]
        with pytest.raises(TypeError, match="str"):
            g.update(bad)
        assert len(g) == 0

        with pytest.raises(TypeError, match="tuple"):
            g.update([(S[0], P[0], O[0])])
        assert len(g) == 0

    def test_update_accepts_generators(self):
        g = Graph()
        added = g.update(Triple(S[i], P[0], O[0]) for i in range(3))
        assert added == 3 and len(g) == 3

    def test_iteration_yields_all(self):
        g = make_graph()
        assert len(list(g)) == len(g) == 5

    def test_union_operator(self):
        g1 = Graph([Triple(S[0], P[0], O[0])])
        g2 = Graph([Triple(S[1], P[0], O[0])])
        merged = g1 | g2
        assert len(merged) == 2
        assert len(g1) == 1  # unchanged

    def test_eq(self):
        assert make_graph() == make_graph()
        g = make_graph()
        g.discard(Triple(S[0], P[0], O[0]))
        assert g != make_graph()

    def test_rejects_non_triple(self):
        with pytest.raises(TypeError):
            Graph().add("not a triple")

    def test_unhashable(self):
        """Graphs compare by value but are mutable, so like list/dict they
        must not be hashable — equal graphs in a set would otherwise land
        in different buckets under the old identity hash."""
        g = make_graph()
        with pytest.raises(TypeError):
            hash(g)
        with pytest.raises(TypeError):
            {g}


class TestPatternAccess:
    @pytest.mark.parametrize(
        "pattern,count",
        [
            (TriplePattern(X, Y, Z), 5),
            (TriplePattern(S[0], Y, Z), 3),
            (TriplePattern(X, P[0], Z), 3),
            (TriplePattern(X, Y, O[0]), 3),
            (TriplePattern(S[0], P[0], Z), 2),
            (TriplePattern(X, P[0], O[0]), 2),
            (TriplePattern(S[0], Y, O[0]), 2),
            (TriplePattern(S[0], P[0], O[0]), 1),
            (TriplePattern(S[4], Y, Z), 0),
        ],
    )
    def test_all_shapes(self, pattern, count):
        g = make_graph()
        assert g.count(pattern) == count

    def test_repeated_variable_requires_equal_terms(self):
        shared = IRI("http://x/same")
        g = Graph([
            Triple(shared, P[0], shared),
            Triple(S[0], P[0], shared),
        ])
        matches = list(g.triples(TriplePattern(X, P[0], X)))
        assert matches == [Triple(shared, P[0], shared)]

    def test_views(self):
        g = make_graph()
        assert S[0] in g.subjects()
        assert P[2] in g.predicates()
        assert Literal("v0") in g.objects()


@settings(max_examples=60, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 2), st.integers(0, 3)),
        max_size=40,
    )
)
def test_property_graph_matches_naive_set(data):
    """The indexed store behaves exactly like a set of triples with a
    linear-scan matcher, for every pattern shape."""
    triples = [Triple(S[a], P[b], O[c]) for a, b, c in data]
    g = Graph(triples)
    reference = set(triples)
    assert len(g) == len(reference)

    patterns = [
        TriplePattern(X, Y, Z),
        TriplePattern(S[0], Y, Z),
        TriplePattern(X, P[1], Z),
        TriplePattern(X, Y, O[2]),
        TriplePattern(S[1], P[0], Z),
        TriplePattern(X, P[0], O[0]),
        TriplePattern(S[2], Y, O[1]),
        TriplePattern(S[0], P[0], O[0]),
    ]
    for pattern in patterns:
        expected = {t for t in reference if pattern.matches(t)}
        assert set(g.triples(pattern)) == expected
