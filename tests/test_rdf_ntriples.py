"""N-Triples parser/serializer tests, including round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import (
    IRI,
    BlankNode,
    Literal,
    NTriplesError,
    Triple,
    parse_ntriples,
    serialize_ntriples,
)


class TestParsing:
    def test_simple_triple(self):
        [t] = parse_ntriples("<http://x/s> <http://x/p> <http://x/o> .")
        assert t == Triple(IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o"))

    def test_literal_object(self):
        [t] = parse_ntriples('<http://x/s> <http://x/p> "hello" .')
        assert t.o == Literal("hello")

    def test_language_literal(self):
        [t] = parse_ntriples('<http://x/s> <http://x/p> "salut"@fr-CA .')
        assert t.o == Literal("salut", language="fr-CA")

    def test_datatyped_literal(self):
        text = '<http://x/s> <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        [t] = parse_ntriples(text)
        assert t.o.datatype.value.endswith("integer")

    def test_blank_nodes(self):
        [t] = parse_ntriples("_:a <http://x/p> _:b .")
        assert t.s == BlankNode("a") and t.o == BlankNode("b")

    def test_escapes(self):
        [t] = parse_ntriples(r'<http://x/s> <http://x/p> "line1\nline2\t\"q\" é" .')
        assert t.o.lexical == 'line1\nline2\t"q" é'

    def test_comments_and_blank_lines_skipped(self):
        text = "\n# a comment\n\n<http://x/s> <http://x/p> <http://x/o> . # trailing\n"
        assert len(list(parse_ntriples(text))) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "<http://x/s> <http://x/p> <http://x/o>",   # no dot
            "<http://x/s> <http://x/p> .",              # missing object
            '"lit" <http://x/p> <http://x/o> .',        # literal subject
            "<http://x/s> _:b <http://x/o> .",          # blank predicate
            "<http://x/s> <http://x/p> <http://x/o> . junk",
        ],
    )
    def test_malformed_lines_raise_with_lineno(self, bad):
        with pytest.raises(NTriplesError) as err:
            list(parse_ntriples(bad))
        assert "line 1" in str(err.value)

    def test_error_lineno_is_accurate(self):
        text = "<http://x/s> <http://x/p> <http://x/o> .\nbroken\n"
        with pytest.raises(NTriplesError) as err:
            list(parse_ntriples(text))
        assert err.value.lineno == 2


class TestRoundTrip:
    def test_serialize_parse_roundtrip(self):
        triples = [
            Triple(IRI("http://x/s"), IRI("http://x/p"), Literal('a "quoted"\nvalue')),
            Triple(BlankNode("b0"), IRI("http://x/p"), Literal("fr", language="fr")),
            Triple(IRI("http://x/s"), IRI("http://x/q"), IRI("http://x/o")),
        ]
        text = serialize_ntriples(triples)
        assert list(parse_ntriples(text)) == triples

    def test_empty(self):
        assert serialize_ntriples([]) == ""
        assert list(parse_ntriples("")) == []


_simple_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(
    s=st.integers(0, 5),
    p=st.integers(0, 3),
    lex=_simple_text,
    lang=st.one_of(st.none(), st.sampled_from(["en", "fr", "de-CH"])),
)
def test_property_literal_roundtrip(s, p, lex, lang):
    triple = Triple(
        IRI(f"http://x/s{s}"),
        IRI(f"http://x/p{p}"),
        Literal(lex, language=lang),
    )
    text = serialize_ntriples([triple])
    assert list(parse_ntriples(text)) == [triple]
