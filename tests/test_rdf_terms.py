"""Unit tests for the RDF term model."""

import pytest

from repro.rdf import (
    IRI,
    BlankNode,
    Literal,
    Variable,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from repro.rdf.terms import is_concrete


class TestIRI:
    def test_n3_roundtrip_form(self):
        assert IRI("http://example.org/a").n3() == "<http://example.org/a>"

    def test_equality_and_hash(self):
        assert IRI("http://x/a") == IRI("http://x/a")
        assert hash(IRI("http://x/a")) == hash(IRI("http://x/a"))
        assert IRI("http://x/a") != IRI("http://x/b")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IRI("")

    @pytest.mark.parametrize("bad", ["http://x/a b", "http://x/<a>", 'http://x/"q"'])
    def test_forbidden_characters_rejected(self, bad):
        with pytest.raises(ValueError):
            IRI(bad)


class TestLiteral:
    def test_plain(self):
        lit = Literal("hello")
        assert lit.n3() == '"hello"'
        assert lit.language is None and lit.datatype is None

    def test_language_tagged(self):
        lit = Literal("bonjour", language="fr")
        assert lit.n3() == '"bonjour"@fr'

    def test_datatyped(self):
        lit = Literal("5", datatype=IRI(XSD_INTEGER))
        assert lit.n3() == f'"5"^^<{XSD_INTEGER}>'

    def test_language_and_datatype_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", language="en", datatype=IRI(XSD_INTEGER))

    def test_empty_language_rejected(self):
        with pytest.raises(ValueError):
            Literal("x", language="")

    def test_to_python_integer(self):
        assert Literal("42", datatype=IRI(XSD_INTEGER)).to_python() == 42

    def test_to_python_double(self):
        assert Literal("2.5", datatype=IRI(XSD_DOUBLE)).to_python() == 2.5

    @pytest.mark.parametrize("lex,expected", [("true", True), ("1", True), ("false", False)])
    def test_to_python_boolean(self, lex, expected):
        assert Literal(lex, datatype=IRI(XSD_BOOLEAN)).to_python() is expected

    def test_to_python_plain_is_string(self):
        assert Literal("x").to_python() == "x"

    def test_is_numeric(self):
        assert Literal("1", datatype=IRI(XSD_INTEGER)).is_numeric
        assert not Literal("1").is_numeric

    def test_escaping_in_n3(self):
        lit = Literal('say "hi"\n\t\\')
        assert lit.n3() == '"say \\"hi\\"\\n\\t\\\\"'

    def test_distinct_by_language(self):
        assert Literal("a", language="en") != Literal("a", language="de")
        assert Literal("a", language="en") != Literal("a")


class TestBlankNodeVariable:
    def test_blank_node_n3(self):
        assert BlankNode("b0").n3() == "_:b0"

    def test_blank_label_required(self):
        with pytest.raises(ValueError):
            BlankNode("")

    def test_variable_n3(self):
        assert Variable("x").n3() == "?x"

    def test_variable_rejects_sigil(self):
        with pytest.raises(ValueError):
            Variable("?x")

    def test_variable_name_required(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_is_concrete(self):
        assert is_concrete(IRI("http://x/a"))
        assert is_concrete(Literal("a"))
        assert is_concrete(BlankNode("b"))
        assert not is_concrete(Variable("v"))
