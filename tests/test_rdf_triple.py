"""Unit tests for triples and triple patterns (the eight shapes)."""

import pytest

from repro.rdf import IRI, BlankNode, Literal, PatternShape, Triple, TriplePattern, Variable

S = IRI("http://x/s")
P = IRI("http://x/p")
O = IRI("http://x/o")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestTriple:
    def test_construction_and_iteration(self):
        t = Triple(S, P, Literal("v"))
        assert list(t) == [S, P, Literal("v")]

    def test_subject_cannot_be_literal(self):
        with pytest.raises(TypeError):
            Triple(Literal("a"), P, O)

    def test_predicate_must_be_iri(self):
        with pytest.raises(TypeError):
            Triple(S, BlankNode("b"), O)
        with pytest.raises(TypeError):
            Triple(S, Literal("p"), O)

    def test_no_variables_in_triple(self):
        with pytest.raises(TypeError):
            Triple(X, P, O)
        with pytest.raises(TypeError):
            Triple(S, P, Z)

    def test_blank_node_subject_and_object_allowed(self):
        t = Triple(BlankNode("b"), P, BlankNode("c"))
        assert isinstance(t.s, BlankNode)

    def test_n3(self):
        assert Triple(S, P, O).n3() == "<http://x/s> <http://x/p> <http://x/o> ."


class TestPatternShapes:
    ALL = {
        (X, Y, Z): PatternShape.spo,
        (X, Y, O): PatternShape.spO,
        (X, P, Z): PatternShape.sPo,
        (X, P, O): PatternShape.sPO,
        (S, Y, Z): PatternShape.Spo,
        (S, Y, O): PatternShape.SpO,
        (S, P, Z): PatternShape.SPo,
        (S, P, O): PatternShape.SPO,
    }

    def test_all_eight_shapes(self):
        for (s, p, o), shape in self.ALL.items():
            assert TriplePattern(s, p, o).shape is shape

    def test_bound_positions(self):
        assert PatternShape.SPo.bound_positions == ("s", "p")
        assert PatternShape.spo.bound_positions == ()
        assert PatternShape.SPO.bound_positions == ("s", "p", "o")


class TestPatternOps:
    def test_variables(self):
        assert TriplePattern(X, P, Z).variables() == frozenset({X, Z})
        assert TriplePattern(S, P, O).variables() == frozenset()

    def test_repeated_variable_counted_once(self):
        assert TriplePattern(X, P, X).variables() == frozenset({X})

    def test_matches_structural(self):
        pattern = TriplePattern(X, P, Z)
        assert pattern.matches(Triple(S, P, O))
        assert not pattern.matches(Triple(S, IRI("http://x/q"), O))

    def test_substitute_partial(self):
        pattern = TriplePattern(X, P, Z)
        bound = pattern.substitute({X: S})
        assert bound == TriplePattern(S, P, Z)

    def test_substitute_full_and_as_triple(self):
        pattern = TriplePattern(X, P, Z).substitute({X: S, Z: O})
        assert pattern.as_triple() == Triple(S, P, O)

    def test_as_triple_rejects_remaining_variables(self):
        with pytest.raises(ValueError):
            TriplePattern(X, P, O).as_triple()

    def test_is_concrete(self):
        assert TriplePattern(S, P, O).is_concrete()
        assert not TriplePattern(S, P, Z).is_concrete()
