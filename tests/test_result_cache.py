"""Unit tests for the caching subsystem (PR 9 tentpole).

The ledger, the key canonicalization, and the byte-budgeted store are
all exercised in isolation here — against a stub network — so the
admission/eviction/invalidation contracts hold independently of the
overlay wiring (which tests/test_cache_coherence.py covers end to end).
"""

from repro.cache import DataEpochLedger, ResultCache
from repro.cache.keys import (
    bgp_cache_key,
    canonical_rows,
    pattern_cache_key,
    rebind_rows,
)
from repro.metrics import CacheCounters
from repro.overlay import KeyKind
from repro.rdf import FOAF, IRI, TriplePattern, Variable
from repro.sparql.solutions import SolutionMapping

X, Y, A, B = Variable("x"), Variable("y"), Variable("a"), Variable("b")
K1 = (KeyKind.P, 101)
K2 = (KeyKind.P, 202)


class StubNetwork:
    """The three attributes ResultCache reads off the real Network."""

    def __init__(self):
        self.cache = CacheCounters()
        self.data_epochs = DataEpochLedger()
        self.membership_epoch = 0


def make_cache(byte_cap=4096, admit_threshold=2):
    network = StubNetwork()
    return ResultCache(network, byte_cap, admit_threshold), network


def person(i):
    return IRI(f"http://example.org/people/p{i}")


def rows(*indices):
    """A canonical-row tuple shaped like a cached primitive result."""
    return tuple((person(i), person(i + 1)) for i in indices)


class TestDataEpochLedger:
    def test_advance_and_get(self):
        ledger = DataEpochLedger()
        assert ledger.get(K1) == 0
        assert ledger.advance(K1) == 1
        assert ledger.advance(K1) == 2
        assert ledger.get(K1) == 2
        assert ledger.get(K2) == 0
        assert ledger.global_epoch == 2

    def test_snapshot_and_current(self):
        ledger = DataEpochLedger()
        ledger.advance(K1)
        stamps = ledger.snapshot([K1, K2])
        assert stamps == {K1: 1, K2: 0}
        assert ledger.current(stamps)
        ledger.advance(K2)
        assert not ledger.current(stamps)


class TestAdmissionGate:
    def test_below_threshold_defers(self):
        cache, network = make_cache(admit_threshold=2)
        entry, admit = cache.probe("k")
        assert entry is None and not admit
        assert network.cache.admission_deferred == 1
        entry, admit = cache.probe("k")
        assert entry is None and admit

    def test_threshold_one_admits_immediately(self):
        cache, _ = make_cache(admit_threshold=1)
        _, admit = cache.probe("k")
        assert admit

    def test_frequency_survives_eviction(self):
        cache, _ = make_cache(admit_threshold=2)
        cache.probe("k"), cache.probe("k")
        assert cache.admit("k", rows(0), (X, Y), {}, 0)
        # Force the entry out; the next probe is a miss but the key has
        # already cleared the gate, so a refill is allowed at once.
        cache._drop("k", cache.entries["k"])
        _, admit = cache.probe("k")
        assert admit

    def test_hit_path(self):
        cache, network = make_cache(admit_threshold=1)
        cache.probe("k")
        assert cache.admit("k", rows(0, 2), (X, Y), {K1: 0}, 0)
        entry, admit = cache.probe("k")
        assert entry is not None and not admit
        assert entry.value == rows(0, 2)
        assert network.cache.hits == 1
        assert network.cache.hit_ratio() == 0.5


class TestByteBudget:
    def test_oversized_value_rejected(self):
        cache, network = make_cache(byte_cap=16, admit_threshold=1)
        cache.probe("k")
        assert not cache.admit("k", rows(0, 2, 4, 6), (X, Y), {}, 0)
        assert network.cache.admissions == 0
        assert cache.bytes_used == 0

    def test_lfu_then_lru_eviction(self):
        from repro.net.sizes import size_of
        value = rows(0)
        cache, network = make_cache(admit_threshold=1)
        nbytes = size_of(value)
        # Budget fits exactly two entries.
        cache.byte_cap = 2 * nbytes
        # "hot" gets two probes, "warm" and "cold" one each.
        cache.probe("hot"), cache.probe("hot")
        cache.probe("warm")
        cache.admit("hot", value, (X, Y), {}, 0)
        cache.admit("warm", value, (X, Y), {}, 0)
        cache.probe("cold")
        cache.admit("cold", value, (X, Y), {}, 0)
        # The least-frequent entry went, the hot one stayed.
        assert "hot" in cache.entries and "cold" in cache.entries
        assert "warm" not in cache.entries
        assert network.cache.evictions == 1
        assert cache.bytes_used == 2 * nbytes

    def test_lru_breaks_frequency_ties(self):
        value = rows(0)
        cache, _ = make_cache(admit_threshold=1)
        from repro.net.sizes import size_of
        cache.byte_cap = 2 * size_of(value)
        cache.probe("first")
        cache.admit("first", value, (X, Y), {}, 0)
        cache.probe("second")
        cache.admit("second", value, (X, Y), {}, 0)
        # Equal frequencies; touch "first" so "second" is least recent.
        cache.probe("first")
        cache.frequencies["first"] = cache.frequencies["second"]
        cache.probe("third")
        cache.admit("third", value, (X, Y), {}, 0)
        assert "second" not in cache.entries
        assert "first" in cache.entries


class TestInvalidation:
    def test_stale_data_epoch_drops_entry(self):
        cache, network = make_cache(admit_threshold=1)
        cache.probe("k")
        stamps = network.data_epochs.snapshot([K1])
        cache.admit("k", rows(0), (X, Y), stamps, 0)
        network.data_epochs.advance(K1)
        entry, admit = cache.probe("k")
        assert entry is None and admit
        assert network.cache.stale_drops == 1
        assert "k" not in cache.entries
        assert cache.bytes_used == 0

    def test_membership_epoch_invalidates(self):
        cache, network = make_cache(admit_threshold=1)
        cache.probe("k")
        cache.admit("k", rows(0), (X, Y), {}, network.membership_epoch)
        network.membership_epoch += 1
        entry, _ = cache.probe("k")
        assert entry is None
        assert network.cache.stale_drops == 1

    def test_racing_delta_makes_entry_dead_on_arrival(self):
        """Stamps captured *before* the computation: a delta that lands
        mid-computation must turn the admitted entry into a miss."""
        cache, network = make_cache(admit_threshold=1)
        cache.probe("k")
        stamps = network.data_epochs.snapshot([K1])
        network.data_epochs.advance(K1)  # the race
        cache.admit("k", rows(0), (X, Y), stamps, 0)
        entry, _ = cache.probe("k")
        assert entry is None

    def test_unrelated_key_delta_leaves_entry_alone(self):
        cache, network = make_cache(admit_threshold=1)
        cache.probe("k")
        stamps = network.data_epochs.snapshot([K1])
        cache.admit("k", rows(0), (X, Y), stamps, 0)
        network.data_epochs.advance(K2)
        entry, _ = cache.probe("k")
        assert entry is not None


class TestKeys:
    def test_pattern_key_is_rename_invariant(self):
        k1, vars1 = pattern_cache_key(TriplePattern(X, FOAF.knows, Y))
        k2, vars2 = pattern_cache_key(TriplePattern(A, FOAF.knows, B))
        assert k1 == k2
        assert vars1 == (X, Y) and vars2 == (A, B)

    def test_pattern_key_distinguishes_repeated_variables(self):
        reflexive, _ = pattern_cache_key(TriplePattern(X, FOAF.knows, X))
        plain, _ = pattern_cache_key(TriplePattern(X, FOAF.knows, Y))
        assert reflexive != plain

    def test_rebind_round_trip(self):
        solutions = {
            SolutionMapping({X: person(0), Y: person(1)}),
            SolutionMapping({X: person(2), Y: person(3)}),
        }
        stored = canonical_rows(solutions, (X, Y))
        assert rebind_rows(stored, (A, B)) == {
            SolutionMapping({A: person(0), B: person(1)}),
            SolutionMapping({A: person(2), B: person(3)}),
        }

    def test_bgp_key_order_insensitive(self):
        p1 = TriplePattern(X, FOAF.knows, Y)
        p2 = TriplePattern(Y, FOAF.name, A)
        assert bgp_cache_key([p1, p2], None) == bgp_cache_key([p2, p1], None)

    def test_bgp_key_projection_signature(self):
        p1 = TriplePattern(X, FOAF.knows, Y)
        assert bgp_cache_key([p1], None) != bgp_cache_key([p1], [X])
        assert bgp_cache_key([p1], [X, Y]) == bgp_cache_key([p1], [Y, X])


class TestCounters:
    def test_checkpoint_delta(self):
        cache, network = make_cache(admit_threshold=1)
        before = network.cache.checkpoint()
        cache.probe("k")
        cache.admit("k", rows(0), (X, Y), {}, 0)
        cache.probe("k")
        delta = network.cache.delta(before)
        assert delta["probes"] == 2
        assert delta["hits"] == 1
        assert delta["misses"] == 1
        assert delta["admissions"] == 1
