"""Retry budgets, backoff, and deadline propagation (PR 6 tentpole).

The paper's failure detection is the RPC timeout itself (Sect. III-D);
``RetryPolicy`` turns that detection into recovery.  These tests pin the
properties everything else relies on: the backoff schedule is a pure
function of (seed, call key, attempt); only timeouts are retried; a
deadline bounds the whole call including retries; and — the big one —
enabling retries on a healthy system changes *nothing* on the wire.
"""

import pytest

from repro.net import Network, Node, RemoteError, RetryPolicy, RpcTimeout
from repro.query import (
    DistributedExecutor, ExecutionOptions, QueryDeadlineExceeded, QueryFailed,
)

from helpers import build_system

KNOWS_QUERY = "SELECT ?x ?y WHERE { ?x foaf:knows ?y . }"


class TestBackoffSchedule:
    def test_first_attempt_is_free(self):
        policy = RetryPolicy()
        assert policy.backoff_before(1) == 0.0
        assert policy.backoff_before(0) == 0.0

    def test_pure_exponential_without_jitter(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0,
                             max_backoff=0.5, jitter=0.0)
        assert policy.backoff_before(2) == pytest.approx(0.1)
        assert policy.backoff_before(3) == pytest.approx(0.2)
        assert policy.backoff_before(4) == pytest.approx(0.4)
        # Capped, not unbounded growth.
        assert policy.backoff_before(5) == pytest.approx(0.5)
        assert policy.backoff_before(9) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0, jitter=0.5,
                             seed=42)
        for attempt in (2, 3, 4):
            raw = 0.1 * 2.0 ** (attempt - 2)
            d1 = policy.backoff_before(attempt, key="a>b.ping")
            d2 = policy.backoff_before(attempt, key="a>b.ping")
            assert d1 == d2, "same (seed, key, attempt) must replay exactly"
            assert raw * 0.5 <= d1 <= raw * 1.5

    def test_jitter_varies_by_key_and_seed(self):
        policy = RetryPolicy(jitter=0.5, seed=0)
        assert (policy.backoff_before(2, key="a>b.ping")
                != policy.backoff_before(2, key="a>c.ping"))
        other_seed = RetryPolicy(jitter=0.5, seed=1)
        assert (policy.backoff_before(2, key="a>b.ping")
                != other_seed.backoff_before(2, key="a>b.ping"))


class _Echo(Node):
    def rpc_ping(self, payload, src):
        return payload["n"]

    def rpc_boom(self, payload, src):
        raise RuntimeError("handler exploded")


def _net():
    network = Network()
    network.register(_Echo("a"))
    network.register(_Echo("b"))
    return network


def _call(network, method, payload, timeout=None, policy=None):
    def proc():
        value = yield network.call("a", "b", method, payload, timeout,
                                   retry=policy)
        return value

    return network.sim.run_process(proc())


class TestNetworkRetry:
    def test_no_retry_by_default(self):
        network = _net()
        network.fail_node("b")
        with pytest.raises(RpcTimeout):
            _call(network, "ping", {"n": 1}, timeout=0.1)
        assert network.failover.retries == 0

    def test_retry_recovers_from_transient_failure(self):
        network = _net()
        network.fail_node("b")
        # Back up before the second attempt launches (timeout 0.1 +
        # backoff 0.05), so attempt 2 lands on a live node.
        network.sim.timeout(0.12).callbacks.append(
            lambda _e: network.recover_node("b"))
        policy = RetryPolicy(attempts=3, base_backoff=0.05, jitter=0.0,
                             per_attempt_timeout=0.1)
        value = _call(network, "ping", {"n": 7}, policy=policy)
        assert value == 7
        assert network.failover.retries == 1
        assert network.failover.retries_recovered == 1

    def test_budget_exhaustion_surfaces_the_timeout(self):
        network = _net()
        network.fail_node("b")
        policy = RetryPolicy(attempts=2, base_backoff=0.01, jitter=0.0,
                             per_attempt_timeout=0.05)
        with pytest.raises(RpcTimeout):
            _call(network, "ping", {"n": 1}, policy=policy)
        assert network.failover.retries == 1
        assert network.failover.retries_recovered == 0

    def test_remote_errors_are_never_retried(self):
        network = _net()
        policy = RetryPolicy(attempts=5, base_backoff=0.01)
        with pytest.raises(RemoteError):
            _call(network, "boom", {}, policy=policy)
        assert network.failover.retries == 0

    def test_deadline_bounds_the_whole_call(self):
        network = _net()
        network.fail_node("b")
        policy = RetryPolicy(attempts=50, base_backoff=0.05, jitter=0.0,
                             per_attempt_timeout=0.1)

        def proc():
            value = yield network.call(
                "a", "b", "ping", {"n": 1}, retry=policy,
                deadline=network.sim.now + 0.25)
            return value

        with pytest.raises(RpcTimeout):
            network.sim.run_process(proc())
        assert network.failover.deadline_exhausted >= 1
        # The 50-attempt budget never ran: the deadline cut it short.
        assert network.failover.retries < 5
        assert network.sim.now <= 0.3


class TestExecutorIntegration:
    def test_retries_enabled_is_byte_identical_when_healthy(self):
        """The acceptance bar: a no-fault run with retries on matches the
        classic run message for message, byte for byte."""
        plain_sys = build_system()
        plain, plain_report = DistributedExecutor(plain_sys).execute(
            KNOWS_QUERY, initiator="D1")

        retry_sys = build_system()
        options = ExecutionOptions(retries=2, backoff=0.05)
        wrapped, retry_report = DistributedExecutor(retry_sys, options).execute(
            KNOWS_QUERY, initiator="D1")

        assert wrapped.rows == plain.rows
        assert retry_report.messages == plain_report.messages
        assert retry_report.bytes_total == plain_report.bytes_total
        assert retry_report.response_time == plain_report.response_time
        assert retry_sys.network.failover.retries == 0

    def test_generous_deadline_does_not_change_answers(self):
        plain, _ = DistributedExecutor(build_system()).execute(
            KNOWS_QUERY, initiator="D1")
        system = build_system()
        result, _ = DistributedExecutor(
            system, ExecutionOptions(query_deadline=100.0)
        ).execute(KNOWS_QUERY, initiator="D1")
        assert result.rows == plain.rows
        assert system.network.failover.deadline_exhausted == 0

    def test_impossible_deadline_fails_cleanly(self):
        system = build_system()
        executor = DistributedExecutor(
            system, ExecutionOptions(query_deadline=0.001, retries=3))
        with pytest.raises(QueryFailed):
            executor.execute(KNOWS_QUERY, initiator="D1")
        assert system.network.failover.deadline_exhausted >= 1

    def test_deadline_mid_query_raises_the_typed_error(self):
        """A deadline that expires between steps surfaces as
        QueryDeadlineExceeded from the executor's own clamp."""
        system = build_system()
        # Long enough for the first lookup round-trips, far too short for
        # the full pipeline (the healthy run takes ~0.1+ s simulated).
        executor = DistributedExecutor(
            system, ExecutionOptions(query_deadline=0.045))
        with pytest.raises((QueryDeadlineExceeded, QueryFailed)) as excinfo:
            executor.execute(KNOWS_QUERY, initiator="D1")
        # The budget ran out either at the initiator (typed error, counted)
        # or inside a remote fan-out (the index node's clamp raises and the
        # error message names the deadline) — never as a silent partial
        # answer.
        assert (system.network.failover.deadline_exhausted >= 1
                or "deadline" in str(excinfo.value))
