"""Shipping optimizations are pure transport-level changes: every
(primitive strategy × conjunction mode × join-site policy) combination,
under *any* subset of {semijoin, projection pushdown, dictionary
encoding}, must return bit-identical results on the paper's Fig. 4-9
queries (plus DISTINCT/ASK forms, where projection pushdown actually
engages)."""

import itertools
from collections import Counter

import pytest

from repro.query import (
    ConjunctionMode,
    DistributedExecutor,
    ExecutionOptions,
    JoinSitePolicy,
    PrimitiveStrategy,
)

from helpers import build_system

FIGURE_QUERIES = {
    "fig4": """SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name . ?x foaf:knows ?z .
        ?x ns:knowsNothingAbout ?y . ?y foaf:knows ?z .
        FILTER regex(?name, "Smith") } ORDER BY DESC(?x)""",
    "fig5": "SELECT ?x WHERE { ?x foaf:knows ns:me . }",
    "fig6": """SELECT ?x ?y ?z WHERE {
        ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y . }""",
    "fig7": """SELECT ?x ?y WHERE {
        { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
        OPTIONAL { ?y foaf:nick "Shrek" . } }""",
    "fig8": """SELECT ?x ?y ?z WHERE {
        { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
        UNION
        { ?x foaf:mbox <mailto:abc@example.org> . ?x foaf:knows ?z . } }""",
    "fig9": """SELECT ?x ?y ?z WHERE {
        ?x foaf:name ?name ; ns:knowsNothingAbout ?y .
        FILTER regex(?name, "Smith")
        OPTIONAL { ?y foaf:knows ?z . } }""",
}

#: Query forms whose output spec makes projection pushdown *active*
#: (plain SELECT disables it to preserve duplicate-row counts).
EXTRA_QUERIES = {
    "distinct": """SELECT DISTINCT ?x WHERE {
        ?x foaf:knows ?y . ?y foaf:knows ?z . }""",
    "ask": "ASK { ?x foaf:name ?name . ?x foaf:knows ?y . }",
}

ALL_QUERIES = {**FIGURE_QUERIES, **EXTRA_QUERIES}

COMBOS = list(itertools.product(PrimitiveStrategy, ConjunctionMode,
                                JoinSitePolicy))

SUBSETS = [
    dict(semijoin=sj, projection_pushdown=pp, dictionary_encoding=de)
    for sj in (False, True)
    for pp in (False, True)
    for de in (False, True)
]


def canon(result):
    """Order-insensitive, duplicate-preserving fingerprint of a result."""
    if result.boolean is not None:
        return result.boolean
    return Counter(
        tuple(sorted((v.name, t.n3()) for v, t in mu.items()))
        for mu in result.rows
    )


def run(system, text, strategy, mode, policy, **techniques):
    options = ExecutionOptions(
        primitive_strategy=strategy,
        conjunction_mode=mode,
        join_site_policy=policy,
        semijoin_min_rows=1,  # engage the digest path even on tiny data
        **techniques,
    )
    executor = DistributedExecutor(system, options)
    result, _report = executor.execute(text, initiator="D1")
    return canon(result)


@pytest.fixture(scope="module")
def system():
    return build_system()


@pytest.fixture(scope="module")
def baselines(system):
    return {
        name: run(system, text, PrimitiveStrategy.BASIC,
                  ConjunctionMode.BASIC, JoinSitePolicy.MOVE_SMALL)
        for name, text in ALL_QUERIES.items()
    }


@pytest.mark.parametrize("strategy,mode,policy", COMBOS,
                         ids=[f"{s.value}-{m.value}-{p.value}"
                              for s, m, p in COMBOS])
def test_every_combo_every_subset_core_shapes(system, baselines,
                                              strategy, mode, policy):
    """Full technique-subset sweep on the join / union / optional /
    distinct shapes (the ones the optimizations actually rewrite)."""
    for name in ("fig6", "fig8", "fig9", "distinct"):
        for techniques in SUBSETS:
            got = run(system, ALL_QUERIES[name], strategy, mode, policy,
                      **techniques)
            assert got == baselines[name], (name, techniques)


@pytest.mark.parametrize("strategy,mode,policy", COMBOS,
                         ids=[f"{s.value}-{m.value}-{p.value}"
                              for s, m, p in COMBOS])
def test_every_combo_all_techniques_remaining_queries(system, baselines,
                                                      strategy, mode, policy):
    techniques = dict(semijoin=True, projection_pushdown=True,
                      dictionary_encoding=True)
    for name in ("fig4", "fig5", "fig7", "ask"):
        got = run(system, ALL_QUERIES[name], strategy, mode, policy,
                  **techniques)
        assert got == baselines[name], name


def test_every_subset_every_query_default_combo(system, baselines):
    for name, text in ALL_QUERIES.items():
        for techniques in SUBSETS:
            got = run(system, text, PrimitiveStrategy.FREQ,
                      ConjunctionMode.OPTIMIZED, JoinSitePolicy.MOVE_SMALL,
                      **techniques)
            assert got == baselines[name], (name, techniques)


def test_order_by_row_order_is_preserved(system):
    """The one order-sensitive figure query keeps its row order under the
    full optimization stack."""
    def rows(**techniques):
        options = ExecutionOptions(semijoin_min_rows=1, **techniques)
        executor = DistributedExecutor(system, options)
        result, _ = executor.execute(FIGURE_QUERIES["fig4"], initiator="D1")
        return [tuple(sorted((v.name, t.n3()) for v, t in mu.items()))
                for mu in result.rows]

    assert rows() == rows(semijoin=True, projection_pushdown=True,
                          dictionary_encoding=True)
