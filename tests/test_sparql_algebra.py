"""Query Transformation tests: the paper's exact algebra expressions.

Sect. IV names the algebra expression for each example query; these tests
pin our translation to those expressions, using format_algebra with the
paper's P1/P2/... labels.
"""


from repro.rdf import COMMON_PREFIXES, IRI, TriplePattern, Variable
from repro.rdf.namespaces import FOAF, NS
from repro.sparql import (
    BGP,
    Filter,
    LeftJoin,
    Union,
    format_algebra,
    parse_query,
    translate_pattern,
)
from repro.sparql import ast

X, Y, Z, NAME = Variable("x"), Variable("y"), Variable("z"), Variable("name")


def algebra_of(text):
    return translate_pattern(parse_query(text, COMMON_PREFIXES).where)


class TestPrimitiveAndConjunction:
    def test_fig5_primitive_becomes_single_bgp(self):
        """Fig. 5: BGP(P)."""
        alg = algebra_of("SELECT ?x WHERE { ?x foaf:knows ns:me . }")
        assert alg == BGP((TriplePattern(X, FOAF.knows, IRI(NS.base + "me")),))

    def test_fig6_conjunction_merges_into_one_bgp(self):
        """Fig. 6: BGP(P1. P2) — not Join(BGP(P1), BGP(P2))."""
        alg = algebra_of(
            """SELECT ?x ?y ?z WHERE {
                 ?x foaf:knows ?z .
                 ?x ns:knowsNothingAbout ?y .
               }"""
        )
        assert isinstance(alg, BGP)
        assert alg.patterns == (
            TriplePattern(X, FOAF.knows, Z),
            TriplePattern(X, NS.knowsNothingAbout, Y),
        )

    def test_adjacent_groups_merge(self):
        alg = algebra_of(
            "SELECT * WHERE { { ?x foaf:knows ?y . } { ?y foaf:knows ?z . } }"
        )
        assert isinstance(alg, BGP) and len(alg.patterns) == 2


class TestOptional:
    def test_fig7_leftjoin_with_true(self):
        """Fig. 7: LeftJoin(BGP(P1), BGP(P2), true)."""
        alg = algebra_of(
            """SELECT ?x ?y WHERE {
                 { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
                 OPTIONAL { ?y foaf:nick "Shrek" . }
               }"""
        )
        assert isinstance(alg, LeftJoin)
        assert alg.condition is None  # 'true'
        assert isinstance(alg.left, BGP) and len(alg.left.patterns) == 2
        assert isinstance(alg.right, BGP) and len(alg.right.patterns) == 1

    def test_optional_with_inner_filter_becomes_condition(self):
        """Footnote 16: an embedded filter is the LeftJoin's 3rd argument."""
        alg = algebra_of(
            """SELECT * WHERE {
                 ?x foaf:name ?n .
                 OPTIONAL { ?x ns:age ?a . FILTER (?a > 18) }
               }"""
        )
        assert isinstance(alg, LeftJoin)
        assert isinstance(alg.condition, ast.CompareExpr)
        # The filter must NOT remain inside the right operand.
        assert isinstance(alg.right, BGP)

    def test_chained_optionals_left_associative(self):
        alg = algebra_of(
            """SELECT * WHERE {
                 ?x foaf:name ?n .
                 OPTIONAL { ?x foaf:nick ?k . }
                 OPTIONAL { ?x foaf:mbox ?m . }
               }"""
        )
        assert isinstance(alg, LeftJoin)
        assert isinstance(alg.left, LeftJoin)


class TestUnionAndFilter:
    def test_fig8_union_of_bgps(self):
        """Fig. 8: Union(BGP(P1), BGP(P2))."""
        alg = algebra_of(
            """SELECT ?x ?y ?z WHERE {
                 { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
                 UNION
                 { ?x foaf:mbox <mailto:abc@example.org> . ?x foaf:knows ?z . }
               }"""
        )
        assert isinstance(alg, Union)
        assert isinstance(alg.left, BGP) and isinstance(alg.right, BGP)

    def test_fig9_filter_leftjoin_shape(self):
        """Fig. 9: Filter(C1, LeftJoin(BGP(P1. P2), BGP(P3), true))."""
        q = parse_query(
            """SELECT ?x ?y ?z WHERE {
                 ?x foaf:name ?name ;
                    ns:knowsNothingAbout ?y .
                 FILTER regex(?name, "Smith")
                 OPTIONAL { ?y foaf:knows ?z . }
               }""",
            COMMON_PREFIXES,
        )
        alg = translate_pattern(q.where)
        assert isinstance(alg, Filter)
        inner = alg.pattern
        assert isinstance(inner, LeftJoin) and inner.condition is None
        assert isinstance(inner.left, BGP) and len(inner.left.patterns) == 2
        assert isinstance(inner.right, BGP) and len(inner.right.patterns) == 1

    def test_fig9_format_matches_paper_notation(self):
        q = parse_query(
            """SELECT ?x ?y ?z WHERE {
                 ?x foaf:name ?name ;
                    ns:knowsNothingAbout ?y .
                 FILTER regex(?name, "Smith")
                 OPTIONAL { ?y foaf:knows ?z . }
               }""",
            COMMON_PREFIXES,
        )
        alg = translate_pattern(q.where)
        names = {
            TriplePattern(X, FOAF.name, NAME): "P1",
            TriplePattern(X, NS.knowsNothingAbout, Y): "P2",
            TriplePattern(Y, FOAF.knows, Z): "P3",
            alg.condition: "C1",
        }
        assert (
            format_algebra(alg, names)
            == "Filter(C1, LeftJoin(BGP(P1. P2), BGP(P3), true))"
        )


class TestScopeVars:
    def test_certain_vs_in_scope(self):
        alg = algebra_of(
            """SELECT * WHERE {
                 ?x foaf:name ?n .
                 OPTIONAL { ?x foaf:nick ?k . }
               }"""
        )
        assert alg.in_scope_vars() == frozenset({X, Variable("n"), Variable("k")})
        assert alg.certain_vars() == frozenset({X, Variable("n")})

    def test_union_certain_is_intersection(self):
        alg = algebra_of(
            "SELECT * WHERE { { ?x foaf:name ?n . } UNION { ?x foaf:nick ?k . } }"
        )
        assert alg.certain_vars() == frozenset({X})
        assert alg.in_scope_vars() == frozenset({X, Variable("n"), Variable("k")})
