"""Local evaluation tests: graph pattern semantics and query forms."""

import pytest

from repro.rdf import COMMON_PREFIXES, Graph, IRI, Variable
from repro.rdf.namespaces import FOAF, NS
from repro.sparql import evaluate_query, parse_query
from repro.workloads import paper_example_dataset


@pytest.fixture(scope="module")
def graph():
    return Graph(paper_example_dataset())


def run(graph, text):
    return evaluate_query(parse_query(text, COMMON_PREFIXES), graph)


def names(result, var="x"):
    return sorted(b[var].value.rsplit("/", 1)[-1] for b in result.bindings())


class TestSelect:
    def test_fig5_primitive(self, graph):
        result = run(graph, "SELECT ?x WHERE { ?x foaf:knows ns:me . }")
        assert names(result) == ["carl", "gina"]

    def test_fig6_conjunction(self, graph):
        result = run(
            graph,
            """SELECT ?x ?y ?z WHERE {
                 ?x foaf:knows ?z .
                 ?x ns:knowsNothingAbout ?y .
               }""",
        )
        rows = result.bindings()
        assert {r["x"].value.rsplit("/", 1)[-1] for r in rows} == {"anna", "dave", "gina"}

    def test_fig4_full_query(self, graph):
        result = run(
            graph,
            """SELECT ?x ?y ?z WHERE {
                 ?x foaf:name ?name .
                 ?x foaf:knows ?z .
                 ?x ns:knowsNothingAbout ?y .
                 ?y foaf:knows ?z .
                 FILTER regex(?name, "Smith")
                 }""",
        )
        [row] = result.bindings()
        assert row["x"].value.endswith("anna")
        assert row["y"].value.endswith("bella")
        assert row["z"].value.endswith("carl")

    def test_fig7_optional_keeps_unextended(self, graph):
        result = run(
            graph,
            """SELECT ?x ?y WHERE {
                 { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
                 OPTIONAL { ?y foaf:nick "Shrek" . }
               }""",
        )
        ys = names(result, "y")
        assert ys == ["erik", "hugo"]  # hugo has no Shrek nick but survives

    def test_fig8_union(self, graph):
        result = run(
            graph,
            """SELECT ?x WHERE {
                 { ?x foaf:mbox <mailto:abc@example.org> . }
                 UNION
                 { ?x foaf:name "Smith" . }
               }""",
        )
        assert names(result) == ["fred", "smith"]

    def test_order_by_desc_limit_offset(self, graph):
        result = run(
            graph,
            "SELECT ?x WHERE { ?x foaf:knows ns:me . } ORDER BY DESC(?x) LIMIT 1",
        )
        assert names(result) == ["gina"]
        result = run(
            graph,
            "SELECT ?x WHERE { ?x foaf:knows ns:me . } ORDER BY ?x OFFSET 1",
        )
        assert names(result) == ["gina"]

    def test_distinct(self, graph):
        result = run(graph, "SELECT DISTINCT ?p WHERE { ?s ?p ?o . }")
        assert len(result.rows) == len(set(result.rows))
        predicates = {b["p"] for b in result.bindings()}
        assert FOAF.knows in predicates and NS.knowsNothingAbout in predicates

    def test_projection_drops_other_vars(self, graph):
        result = run(graph, "SELECT ?x WHERE { ?x foaf:name ?n . }")
        assert all(set(b) == {"x"} for b in result.bindings())

    def test_select_star_projects_all(self, graph):
        result = run(graph, "SELECT * WHERE { ?x foaf:nick ?n . }")
        assert result.variables == (Variable("n"), Variable("x"))

    def test_empty_result(self, graph):
        result = run(graph, "SELECT ?x WHERE { ?x foaf:knows <http://nobody/> . }")
        assert result.rows == []


class TestOtherForms:
    def test_ask_true_false(self, graph):
        assert run(graph, "ASK { ?x foaf:nick ?n . }").boolean is True
        assert run(graph, 'ASK { ?x foaf:nick "Nobody" . }').boolean is False

    def test_construct(self, graph):
        result = run(
            graph,
            "CONSTRUCT { ?x ns:knownBy ns:me . } WHERE { ?x foaf:knows ns:me . }",
        )
        assert len(result.graph) == 2
        assert all(t.p == NS.knownBy for t in result.graph)

    def test_describe_variable(self, graph):
        result = run(graph, "DESCRIBE ?x WHERE { ?x foaf:mbox <mailto:abc@example.org> . }")
        subjects = {t.s for t in result.graph}
        assert subjects == {IRI("http://example.org/people/fred")}
        assert len(result.graph) == 3  # name, mbox, knows

    def test_describe_iri(self, graph):
        result = run(graph, "DESCRIBE <http://example.org/people/erik>")
        assert {t.p for t in result.graph} == {FOAF.name, FOAF.nick}


class TestBgpSemantics:
    def test_shared_variable_across_patterns(self):
        g = Graph(paper_example_dataset())
        res = run(
            g,
            """SELECT ?a ?b WHERE {
                 ?a foaf:knows ?b .
                 ?b foaf:nick "Shrek" .
               }""",
        )
        pairs = {(r["a"].value.rsplit("/", 1)[-1], r["b"].value.rsplit("/", 1)[-1])
                 for r in res.bindings()}
        assert pairs == {("dave", "erik"), ("smith", "erik")}

    def test_empty_group_yields_single_empty_solution(self):
        g = Graph(paper_example_dataset())
        res = run(g, "ASK {}")
        assert res.boolean is True
