"""FILTER expression evaluation tests (EBV, comparisons, built-ins,
three-valued logic)."""

import pytest

from repro.rdf import IRI, BlankNode, Literal, Variable, XSD_BOOLEAN, XSD_INTEGER
from repro.sparql import SparqlEvalError, parse_query
from repro.sparql.expr import (
    effective_boolean_value,
    evaluate_expression,
    filter_passes,
    order_key,
)
from repro.sparql.solutions import SolutionMapping

X, N = Variable("x"), Variable("n")


def expr_of(filter_text):
    q = parse_query(f"SELECT * WHERE {{ ?x ?p ?n . FILTER {filter_text} }}")
    return q.where.filters[0].expression


def sm(**kwargs):
    return SolutionMapping({Variable(k): v for k, v in kwargs.items()})


INT = lambda n: Literal(str(n), datatype=IRI(XSD_INTEGER))


class TestEBV:
    def test_booleans(self):
        assert effective_boolean_value(True) is True
        assert effective_boolean_value(Literal("true", datatype=IRI(XSD_BOOLEAN)))
        assert not effective_boolean_value(Literal("false", datatype=IRI(XSD_BOOLEAN)))

    def test_numbers(self):
        assert effective_boolean_value(5)
        assert not effective_boolean_value(0)
        assert effective_boolean_value(INT(3))
        assert not effective_boolean_value(INT(0))

    def test_strings(self):
        assert effective_boolean_value("x")
        assert not effective_boolean_value("")
        assert effective_boolean_value(Literal("x"))
        assert not effective_boolean_value(Literal(""))

    def test_iri_has_no_ebv(self):
        with pytest.raises(SparqlEvalError):
            effective_boolean_value(IRI("http://x/a"))


class TestComparisonsAndArithmetic:
    def test_numeric_comparison(self):
        assert filter_passes(expr_of("(?n > 3)"), sm(n=INT(5)))
        assert not filter_passes(expr_of("(?n > 3)"), sm(n=INT(2)))

    def test_mixed_numeric_types(self):
        dec = Literal("2.5", datatype=IRI("http://www.w3.org/2001/XMLSchema#decimal"))
        assert filter_passes(expr_of("(?n < 3)"), sm(n=dec))

    def test_string_comparison(self):
        assert filter_passes(expr_of('(?n = "abc")'), sm(n=Literal("abc")))
        assert filter_passes(expr_of('(?n < "b")'), sm(n=Literal("a")))

    def test_iri_equality_only(self):
        assert filter_passes(expr_of("(?n = <http://x/a>)"), sm(n=IRI("http://x/a")))
        assert not filter_passes(expr_of("(?n != <http://x/a>)"), sm(n=IRI("http://x/a")))
        # ordering IRIs is a type error -> filter fails
        assert not filter_passes(expr_of("(?n < <http://x/a>)"), sm(n=IRI("http://x/a")))

    def test_arithmetic(self):
        assert evaluate_expression(expr_of("(?n + 2 * 3)"), sm(n=INT(1))) == 7
        assert evaluate_expression(expr_of("(?n - 1)"), sm(n=INT(1))) == 0
        assert evaluate_expression(expr_of("(6 / ?n)"), sm(n=INT(4))) == 1.5

    def test_division_by_zero_is_type_error(self):
        assert not filter_passes(expr_of("(1 / ?n > 0)"), sm(n=INT(0)))

    def test_unary_negation(self):
        assert evaluate_expression(expr_of("(-?n)"), sm(n=INT(3))) == -3


class TestThreeValuedLogic:
    def test_unbound_variable_is_error_not_crash(self):
        assert not filter_passes(expr_of("(?missing = 1)"), sm(n=INT(1)))

    def test_or_true_wins_over_error(self):
        # right operand errors (unbound), left true -> true
        assert filter_passes(expr_of("(?n = 1 || ?missing = 2)"), sm(n=INT(1)))
        assert filter_passes(expr_of("(?missing = 2 || ?n = 1)"), sm(n=INT(1)))

    def test_or_error_when_other_false(self):
        assert not filter_passes(expr_of("(?n = 2 || ?missing = 2)"), sm(n=INT(1)))

    def test_and_false_wins_over_error(self):
        assert not filter_passes(expr_of("(?n = 2 && ?missing = 2)"), sm(n=INT(1)))
        assert not filter_passes(expr_of("(?missing = 2 && ?n = 2)"), sm(n=INT(1)))

    def test_not(self):
        assert filter_passes(expr_of("(!(?n = 2))"), sm(n=INT(1)))


class TestBuiltins:
    def test_regex(self):
        assert filter_passes(expr_of('regex(?n, "Smi")'), sm(n=Literal("Smith")))
        assert not filter_passes(expr_of('regex(?n, "^mith")'), sm(n=Literal("Smith")))

    def test_regex_flags(self):
        assert filter_passes(expr_of('regex(?n, "smith", "i")'), sm(n=Literal("Smith")))

    def test_regex_invalid_pattern_is_type_error(self):
        assert not filter_passes(expr_of('regex(?n, "(")'), sm(n=Literal("x")))

    def test_regex_on_iri_is_type_error(self):
        assert not filter_passes(expr_of('regex(?n, "x")'), sm(n=IRI("http://x/a")))

    def test_bound(self):
        assert filter_passes(expr_of("BOUND(?n)"), sm(n=INT(1)))
        assert not filter_passes(expr_of("BOUND(?missing)"), sm(n=INT(1)))

    def test_type_predicates(self):
        assert filter_passes(expr_of("isIRI(?n)"), sm(n=IRI("http://x/a")))
        assert filter_passes(expr_of("isLITERAL(?n)"), sm(n=Literal("a")))
        assert filter_passes(expr_of("isBLANK(?n)"), sm(n=BlankNode("b")))
        assert not filter_passes(expr_of("isIRI(?n)"), sm(n=Literal("a")))

    def test_str_lang_datatype(self):
        assert evaluate_expression(expr_of("STR(?n)"), sm(n=IRI("http://x/a"))) == "http://x/a"
        assert evaluate_expression(expr_of("LANG(?n)"), sm(n=Literal("a", language="en"))) == "en"
        assert evaluate_expression(expr_of("LANG(?n)"), sm(n=Literal("a"))) == ""
        dt = evaluate_expression(expr_of("DATATYPE(?n)"), sm(n=INT(1)))
        assert dt == IRI(XSD_INTEGER)

    def test_langmatches(self):
        e = expr_of('LANGMATCHES(LANG(?n), "en")')
        assert filter_passes(e, sm(n=Literal("a", language="en")))
        assert filter_passes(e, sm(n=Literal("a", language="en-GB")))
        assert not filter_passes(e, sm(n=Literal("a", language="fr")))

    def test_langmatches_star(self):
        e = expr_of('LANGMATCHES(LANG(?n), "*")')
        assert filter_passes(e, sm(n=Literal("a", language="fr")))
        assert not filter_passes(e, sm(n=Literal("a")))

    def test_sameterm(self):
        assert filter_passes(expr_of("sameTerm(?n, ?n)"), sm(n=Literal("a")))
        assert not filter_passes(
            expr_of('sameTerm(?n, "b")'), sm(n=Literal("a"))
        )


class TestOrderKey:
    def test_total_order_groups(self):
        e = expr_of("?n") if False else None
        from repro.sparql import ast
        term_expr = ast.TermExpr(N)
        unbound = order_key(term_expr, sm(x=INT(1)))
        blank = order_key(term_expr, sm(n=BlankNode("b")))
        iri = order_key(term_expr, sm(n=IRI("http://x/a")))
        lit = order_key(term_expr, sm(n=Literal("a")))
        num = order_key(term_expr, sm(n=INT(2)))
        assert unbound < blank < iri < num
        assert unbound < blank < iri < lit

    def test_numeric_order_by_value(self):
        from repro.sparql import ast
        term_expr = ast.TermExpr(N)
        assert order_key(term_expr, sm(n=INT(2))) < order_key(term_expr, sm(n=INT(10)))
