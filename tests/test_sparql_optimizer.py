"""Optimizer tests: filter decomposition/pushing, join reordering — and
semantic preservation under rewriting (property-checked on real data)."""

import pytest

from repro.rdf import COMMON_PREFIXES, Graph, TriplePattern, Variable
from repro.rdf.namespaces import FOAF
from repro.sparql import (
    BGP,
    Filter,
    Join,
    LeftJoin,
    Union,
    evaluate_algebra,
    parse_query,
    translate_pattern,
)
from repro.sparql.optimizer import decompose_filters, optimize, push_filters, reorder_bgp
from repro.workloads import paper_example_dataset

X, Y, N = Variable("x"), Variable("y"), Variable("name")


def algebra_of(text):
    return translate_pattern(parse_query(text, COMMON_PREFIXES).where)


@pytest.fixture(scope="module")
def graph():
    return Graph(paper_example_dataset())


class TestDecomposition:
    def test_and_splits_into_nested_filters(self):
        alg = algebra_of(
            'SELECT * WHERE { ?x foaf:name ?name . FILTER (regex(?name, "S") && BOUND(?x)) }'
        )
        out = decompose_filters(alg)
        assert isinstance(out, Filter)
        assert isinstance(out.pattern, Filter)

    def test_non_and_untouched(self):
        alg = algebra_of(
            'SELECT * WHERE { ?x foaf:name ?name . FILTER (regex(?name, "S") || BOUND(?x)) }'
        )
        assert decompose_filters(alg) == alg


class TestPushing:
    def test_fig9_filter_pushes_into_bgp(self):
        """The paper's Sect. IV-G rewrite: C1 only involves ?name from P1,
        so it moves inside the left BGP of the LeftJoin."""
        alg = algebra_of(
            """SELECT * WHERE {
                 ?x foaf:name ?name ;
                    ns:knowsNothingAbout ?y .
                 FILTER regex(?name, "Smith")
                 OPTIONAL { ?y foaf:knows ?z . }
               }"""
        )
        out = push_filters(alg)
        # Filter is no longer at the top...
        assert isinstance(out, LeftJoin)
        # ... but sits over the name pattern inside the left operand.
        left = out.left
        assert isinstance(left, Join)
        assert isinstance(left.left, Filter)
        assert left.left.pattern == BGP((TriplePattern(X, FOAF.name, N),))

    def test_filter_distributes_over_union(self):
        alg = algebra_of(
            """SELECT * WHERE {
                 { ?x foaf:name ?name . } UNION { ?x foaf:nick ?name . }
                 FILTER regex(?name, "S")
               }"""
        )
        out = push_filters(alg)
        assert isinstance(out, Union)
        assert isinstance(out.left, Filter) and isinstance(out.right, Filter)

    def test_filter_on_optional_variable_not_pushed_past_leftjoin(self):
        """?k is bound only in the optional side: pushing the filter into
        the LeftJoin would change semantics — it must stay on top."""
        alg = algebra_of(
            """SELECT * WHERE {
                 ?x foaf:name ?n .
                 OPTIONAL { ?x foaf:nick ?k . }
                 FILTER BOUND(?k)
               }"""
        )
        out = push_filters(alg)
        assert isinstance(out, Filter)

    def test_multi_variable_filter_stays_above_covering_prefix(self):
        alg = algebra_of(
            """SELECT * WHERE {
                 ?x foaf:name ?a .
                 ?x foaf:nick ?b .
                 FILTER (?a = ?b)
               }"""
        )
        out = push_filters(alg)
        # Needs both patterns: no split possible; the filter stays on top.
        assert isinstance(out, Filter)


class TestReorder:
    def test_orders_by_estimate_and_connectivity(self):
        p_name = TriplePattern(X, FOAF.name, N)
        p_knows = TriplePattern(X, FOAF.knows, Y)
        p_nick = TriplePattern(Y, FOAF.nick, Variable("k"))
        bgp = BGP((p_name, p_knows, p_nick))
        estimates = {p_name: 100.0, p_knows: 50.0, p_nick: 2.0}
        out = reorder_bgp(bgp, lambda p: estimates[p])
        # Cheapest first; then connected patterns before disconnected ones.
        assert out.patterns[0] == p_nick
        assert out.patterns[1] == p_knows  # shares ?y with p_nick
        assert out.patterns[2] == p_name

    def test_avoids_cartesian_when_possible(self):
        a = TriplePattern(X, FOAF.name, N)
        b = TriplePattern(Y, FOAF.nick, Variable("k"))
        c = TriplePattern(X, FOAF.knows, Y)
        bgp = BGP((a, b, c))
        estimates = {a: 1.0, b: 2.0, c: 3.0}
        out = reorder_bgp(bgp, lambda p: estimates[p])
        assert out.patterns == (a, c, b)


QUERIES = [
    """SELECT * WHERE {
         ?x foaf:name ?name ;
            ns:knowsNothingAbout ?y .
         FILTER regex(?name, "Smith")
         OPTIONAL { ?y foaf:knows ?z . }
       }""",
    """SELECT * WHERE {
         { ?x foaf:name ?name . } UNION { ?x foaf:nick ?name . }
         FILTER regex(?name, "S")
       }""",
    """SELECT * WHERE {
         ?x foaf:name ?n .
         OPTIONAL { ?x foaf:nick ?k . }
         FILTER BOUND(?k)
       }""",
    """SELECT * WHERE {
         ?x foaf:knows ?z .
         ?x ns:knowsNothingAbout ?y .
         FILTER isIRI(?z)
       }""",
    """SELECT * WHERE {
         ?x foaf:name ?a .
         ?x foaf:knows ?y .
         FILTER (regex(?a, "Smith") && isIRI(?y))
       }""",
]


@pytest.mark.parametrize("query_text", QUERIES)
def test_rewrites_preserve_semantics(graph, query_text):
    """The full optimizer pipeline never changes query answers."""
    alg = algebra_of(query_text)
    baseline = evaluate_algebra(alg, graph)
    optimized = optimize(alg, estimate=lambda p: float(graph.count(p)))
    assert evaluate_algebra(optimized, graph) == baseline
