"""Parser tests: query forms, patterns, modifiers, expressions."""

import pytest

from repro.rdf import COMMON_PREFIXES, IRI, Literal, TriplePattern, Variable
from repro.rdf.namespaces import FOAF, NS, RDF
from repro.sparql import SparqlSyntaxError, parse_query
from repro.sparql import ast

X, Y = Variable("x"), Variable("y")


def parse(text):
    return parse_query(text, COMMON_PREFIXES)


class TestQueryForms:
    def test_select_projection(self):
        q = parse("SELECT ?x ?y WHERE { ?x foaf:knows ?y . }")
        assert isinstance(q, ast.SelectQuery)
        assert q.projection == (X, Y)

    def test_select_star(self):
        q = parse("SELECT * WHERE { ?x foaf:knows ?y . }")
        assert q.select_all

    def test_select_distinct_reduced(self):
        assert parse("SELECT DISTINCT ?x WHERE { ?x foaf:knows ?y . }").modifiers.distinct
        assert parse("SELECT REDUCED ?x WHERE { ?x foaf:knows ?y . }").modifiers.reduced

    def test_ask(self):
        q = parse("ASK { ?x foaf:knows ?y . }")
        assert isinstance(q, ast.AskQuery)

    def test_construct(self):
        q = parse(
            "CONSTRUCT { ?x ns:met ?y . } WHERE { ?x foaf:knows ?y . }"
        )
        assert isinstance(q, ast.ConstructQuery)
        assert q.template == (TriplePattern(X, NS.met, Y),)

    def test_describe(self):
        q = parse("DESCRIBE ?x WHERE { ?x foaf:knows ?y . }")
        assert isinstance(q, ast.DescribeQuery)
        assert q.subjects == (X,)

    def test_describe_iri_without_where(self):
        q = parse("DESCRIBE <http://x/a>")
        assert q.subjects == (IRI("http://x/a"),)


class TestPrologueAndDataset:
    def test_prefix_declaration_overrides(self):
        q = parse_query(
            "PREFIX p: <http://mine/> SELECT ?x WHERE { ?x p:q ?y . }"
        )
        block = q.where.elements[0]
        assert block.patterns[0].p == IRI("http://mine/q")

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(SparqlSyntaxError) as err:
            parse_query("SELECT ?x WHERE { ?x nope:q ?y . }")
        assert "undeclared prefix" in str(err.value)

    def test_from_clauses(self):
        q = parse(
            "SELECT ?x FROM <http://g/1> FROM NAMED <http://g/2> "
            "WHERE { ?x foaf:knows ?y . }"
        )
        assert q.dataset.default == (IRI("http://g/1"),)
        assert q.dataset.named == (IRI("http://g/2"),)
        assert not q.dataset.is_union_of_all

    def test_no_dataset_means_union_of_all(self):
        q = parse("SELECT ?x WHERE { ?x foaf:knows ?y . }")
        assert q.dataset.is_union_of_all


class TestTripleBlocks:
    def test_semicolon_shares_subject(self):
        q = parse("SELECT * WHERE { ?x foaf:name ?n ; foaf:knows ?y . }")
        block = q.where.elements[0]
        assert block.patterns == (
            TriplePattern(X, FOAF.name, Variable("n")),
            TriplePattern(X, FOAF.knows, Y),
        )

    def test_comma_shares_subject_and_predicate(self):
        q = parse("SELECT * WHERE { ?x foaf:knows ?y , ns:me . }")
        block = q.where.elements[0]
        assert block.patterns == (
            TriplePattern(X, FOAF.knows, Y),
            TriplePattern(X, FOAF.knows, IRI(NS.base + "me")),
        )

    def test_a_is_rdf_type(self):
        q = parse("SELECT * WHERE { ?x a foaf:Person . }")
        assert q.where.elements[0].patterns[0].p == RDF.type

    def test_literal_objects(self):
        q = parse('SELECT * WHERE { ?x foaf:name "Smith" . ?x ns:age 42 . }')
        pats = q.where.elements[0].patterns
        assert pats[0].o == Literal("Smith")
        assert pats[1].o.lexical == "42"
        assert pats[1].o.datatype.value.endswith("integer")

    def test_typed_and_tagged_literals(self):
        q = parse(
            'SELECT * WHERE { ?x ns:l "a"@en . ?x ns:d "1"^^<http://t> . }'
        )
        pats = q.where.elements[0].patterns
        assert pats[0].o == Literal("a", language="en")
        assert pats[1].o == Literal("1", datatype=IRI("http://t"))


class TestCompoundPatterns:
    def test_optional(self):
        q = parse(
            "SELECT * WHERE { ?x foaf:name ?n . OPTIONAL { ?x foaf:nick ?k . } }"
        )
        assert isinstance(q.where.elements[1], ast.OptionalPattern)

    def test_union(self):
        q = parse(
            "SELECT * WHERE { { ?x foaf:name ?n . } UNION { ?x foaf:nick ?n . } }"
        )
        assert isinstance(q.where.elements[0], ast.UnionPattern)

    def test_nested_union_left_associative(self):
        q = parse(
            "SELECT * WHERE { { ?x ns:a ?v . } UNION { ?x ns:b ?v . } UNION { ?x ns:c ?v . } }"
        )
        union = q.where.elements[0]
        assert isinstance(union.left, ast.UnionPattern)

    def test_filter_collected_at_group_level(self):
        q = parse(
            'SELECT * WHERE { ?x foaf:name ?n . FILTER regex(?n, "S") ?x foaf:knows ?y . }'
        )
        assert len(q.where.filters) == 1
        assert len(q.where.elements) == 2

    def test_graph_pattern(self):
        q = parse("SELECT * WHERE { GRAPH <http://g> { ?x foaf:knows ?y . } } ")
        g = q.where.elements[0]
        assert isinstance(g, ast.NamedGraphPattern)
        assert g.graph == IRI("http://g")

    def test_unterminated_group_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse("SELECT * WHERE { ?x foaf:knows ?y .")


class TestExpressions:
    def expr(self, filter_text):
        q = parse(f"SELECT * WHERE {{ ?x foaf:name ?n . FILTER {filter_text} }}")
        return q.where.filters[0].expression

    def test_regex_call(self):
        e = self.expr('regex(?n, "Smith", "i")')
        assert isinstance(e, ast.FunctionCall)
        assert e.name == "REGEX" and len(e.args) == 3

    def test_precedence_or_and(self):
        e = self.expr("(?a || ?b && ?c)")
        assert isinstance(e, ast.OrExpr)
        assert isinstance(e.right, ast.AndExpr)

    def test_comparison_and_arith_precedence(self):
        e = self.expr("(?a + 2 * 3 < 10)")
        assert isinstance(e, ast.CompareExpr)
        assert isinstance(e.left, ast.ArithExpr) and e.left.op == "+"
        assert isinstance(e.left.right, ast.ArithExpr) and e.left.right.op == "*"

    def test_unary(self):
        e = self.expr("(!BOUND(?n) || -1 < ?a)")
        assert isinstance(e.left, ast.NotExpr)

    def test_builtin_arity_checked(self):
        with pytest.raises(SparqlSyntaxError):
            self.expr("regex(?n)")

    def test_nested_parens(self):
        e = self.expr("((?a = 1) && (?b = 2))")
        assert isinstance(e, ast.AndExpr)


class TestSolutionModifiers:
    def test_order_limit_offset(self):
        q = parse(
            "SELECT ?x WHERE { ?x foaf:knows ?y . } "
            "ORDER BY DESC(?x) ?y LIMIT 5 OFFSET 2"
        )
        assert q.modifiers.order[0].descending
        assert not q.modifiers.order[1].descending
        assert q.modifiers.limit == 5
        assert q.modifiers.offset == 2

    def test_offset_before_limit(self):
        q = parse("SELECT ?x WHERE { ?x foaf:knows ?y . } OFFSET 1 LIMIT 3")
        assert q.modifiers.offset == 1 and q.modifiers.limit == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse("SELECT ?x WHERE { ?x foaf:knows ?y . } bogus")
