"""Solution-mapping semantics: unit tests + hypothesis property tests of
the algebraic laws the paper's optimizations rely on (Sect. IV-B/IV-D)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import IRI, Literal, Triple, TriplePattern, Variable
from repro.sparql import (
    EMPTY_MAPPING,
    SolutionMapping,
    compatible,
    join,
    left_outer_join,
    match_pattern,
    merge,
    minus,
    union,
)

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")
A, B, C = IRI("http://x/a"), IRI("http://x/b"), IRI("http://x/c")


def mu(**kwargs):
    return SolutionMapping({Variable(k): v for k, v in kwargs.items()})


class TestSolutionMapping:
    def test_domain(self):
        assert mu(x=A, y=B).domain() == frozenset({X, Y})
        assert EMPTY_MAPPING.domain() == frozenset()

    def test_access(self):
        m = mu(x=A)
        assert m[X] == A
        assert m.get(Y) is None
        with pytest.raises(KeyError):
            m[Y]
        assert X in m and Y not in m

    def test_equality_order_independent(self):
        assert SolutionMapping({X: A, Y: B}) == SolutionMapping({Y: B, X: A})
        assert hash(mu(x=A, y=B)) == hash(mu(y=B, x=A))

    def test_keys_must_be_variables(self):
        with pytest.raises(TypeError):
            SolutionMapping({"x": A})

    def test_project(self):
        assert mu(x=A, y=B).project([X]) == mu(x=A)
        assert mu(x=A).project([Y]) == EMPTY_MAPPING


class TestCompatibility:
    def test_disjoint_domains_always_compatible(self):
        assert compatible(mu(x=A), mu(y=B))

    def test_shared_equal_value_compatible(self):
        assert compatible(mu(x=A, y=B), mu(x=A, z=C))

    def test_shared_conflicting_value_incompatible(self):
        assert not compatible(mu(x=A), mu(x=B))

    def test_empty_compatible_with_everything(self):
        assert compatible(EMPTY_MAPPING, mu(x=A))

    def test_merge(self):
        assert merge(mu(x=A), mu(y=B)) == mu(x=A, y=B)


class TestOperations:
    def test_join_on_shared_variable(self):
        o1 = {mu(x=A, y=B), mu(x=B, y=B)}
        o2 = {mu(x=A, z=C)}
        assert join(o1, o2) == {mu(x=A, y=B, z=C)}

    def test_join_cross_product_when_disjoint(self):
        o1 = {mu(x=A), mu(x=B)}
        o2 = {mu(y=C)}
        assert join(o1, o2) == {mu(x=A, y=C), mu(x=B, y=C)}

    def test_join_with_partial_mappings(self):
        # µ1 unbound on the shared var is compatible with anything.
        o1 = {mu(y=B), mu(x=B, y=C)}
        o2 = {mu(x=A)}
        assert join(o1, o2) == {mu(x=A, y=B)}

    def test_join_empty(self):
        assert join(set(), {mu(x=A)}) == set()
        assert join({mu(x=A)}, set()) == set()

    def test_union(self):
        assert union({mu(x=A)}, {mu(x=B)}) == {mu(x=A), mu(x=B)}

    def test_minus_keeps_incompatible_only(self):
        o1 = {mu(x=A), mu(x=B)}
        o2 = {mu(x=A, z=C)}
        assert minus(o1, o2) == {mu(x=B)}

    def test_minus_empty_right_keeps_all(self):
        assert minus({mu(x=A)}, set()) == {mu(x=A)}

    def test_left_outer_join_definition(self):
        o1 = {mu(x=A), mu(x=B)}
        o2 = {mu(x=A, z=C)}
        assert left_outer_join(o1, o2) == {mu(x=A, z=C), mu(x=B)}


class TestMatchPattern:
    def test_binds_variables(self):
        m = match_pattern(TriplePattern(X, IRI("http://x/p"), Y),
                          Triple(A, IRI("http://x/p"), B))
        assert m == mu(x=A, y=B)

    def test_constant_mismatch(self):
        m = match_pattern(TriplePattern(A, IRI("http://x/p"), Y),
                          Triple(B, IRI("http://x/p"), C))
        assert m is None

    def test_repeated_variable_consistency(self):
        p = IRI("http://x/p")
        assert match_pattern(TriplePattern(X, p, X), Triple(A, p, A)) == mu(x=A)
        assert match_pattern(TriplePattern(X, p, X), Triple(A, p, B)) is None

    def test_fully_concrete_gives_empty_mapping(self):
        p = IRI("http://x/p")
        assert match_pattern(TriplePattern(A, p, B), Triple(A, p, B)) == EMPTY_MAPPING


# ---------------------------------------------------------------------------
# Property-based algebra laws (Pérez et al.; the paper leans on AND/UNION
# being associative and commutative for reordering, Sect. IV-D).
# ---------------------------------------------------------------------------

_terms = st.sampled_from([A, B, C, Literal("1"), Literal("2")])
_vars = st.sampled_from([X, Y, Z])


@st.composite
def mappings(draw):
    n = draw(st.integers(0, 3))
    chosen = draw(st.permutations([X, Y, Z]))[:n]
    return SolutionMapping({v: draw(_terms) for v in chosen})


omegas = st.frozensets(mappings(), max_size=6)
_settings = settings(max_examples=120, deadline=None)


@_settings
@given(omegas, omegas)
def test_join_commutative(o1, o2):
    assert join(o1, o2) == join(o2, o1)


@_settings
@given(omegas, omegas, omegas)
def test_join_associative(o1, o2, o3):
    assert join(join(o1, o2), o3) == join(o1, join(o2, o3))


@_settings
@given(omegas, omegas)
def test_union_commutative(o1, o2):
    assert union(o1, o2) == union(o2, o1)


@_settings
@given(omegas, omegas, omegas)
def test_union_associative(o1, o2, o3):
    assert union(union(o1, o2), o3) == union(o1, union(o2, o3))


@_settings
@given(omegas, omegas, omegas)
def test_join_distributes_over_union(o1, o2, o3):
    assert join(o1, union(o2, o3)) == union(join(o1, o2), join(o1, o3))


@_settings
@given(omegas, omegas)
def test_left_outer_join_is_join_union_minus(o1, o2):
    """Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 − Ω2) — the identity of Sect. IV-E."""
    assert left_outer_join(o1, o2) == union(join(o1, o2), minus(o1, o2))


@_settings
@given(omegas)
def test_join_identity_is_empty_mapping(o1):
    assert join(o1, {EMPTY_MAPPING}) == set(o1)


@_settings
@given(omegas)
def test_minus_self_is_empty_unless_incompatible(o1):
    # Every µ is compatible with itself, so Ω − Ω = ∅.
    assert minus(o1, o1) == set()


@_settings
@given(omegas, omegas)
def test_join_reference_nested_loop(o1, o2):
    """The optimized hash join equals the naive definition."""
    reference = {
        merge(m1, m2) for m1 in o1 for m2 in o2 if compatible(m1, m2)
    }
    assert join(o1, o2) == reference
