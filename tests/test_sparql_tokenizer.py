"""Tokenizer tests."""

import pytest

from repro.sparql import SparqlSyntaxError, tokenize
from repro.sparql.tokenizer import TokenType


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select Select SELECT") == [
            (TokenType.KEYWORD, "SELECT")] * 3

    def test_variables_both_sigils(self):
        assert kinds("?x $y") == [(TokenType.VAR, "x"), (TokenType.VAR, "y")]

    def test_iriref(self):
        assert kinds("<http://x/a>") == [(TokenType.IRIREF, "http://x/a")]

    def test_pname(self):
        assert kinds("foaf:knows") == [(TokenType.PNAME, "foaf:knows")]

    def test_bare_prefix_pname(self):
        assert kinds("foaf:") == [(TokenType.PNAME, "foaf:")]

    def test_default_prefix(self):
        assert kinds(":local") == [(TokenType.PNAME, ":local")]

    def test_string_escapes(self):
        [(_, value)] = kinds(r'"a\"b\nc"')
        assert value == 'a"b\nc'

    def test_single_quoted_string(self):
        assert kinds("'hi'") == [(TokenType.STRING, "hi")]

    def test_unicode_escape(self):
        [(_, value)] = kinds(r'"A"')
        assert value == "A"

    def test_langtag(self):
        assert kinds('"x"@en-GB')[1] == (TokenType.LANGTAG, "en-GB")

    @pytest.mark.parametrize("num", ["42", "3.14", ".5", "1e6", "2.5E-3"])
    def test_numbers(self, num):
        assert kinds(num) == [(TokenType.NUMBER, num)]

    def test_booleans(self):
        assert kinds("true FALSE") == [
            (TokenType.BOOLEAN, "true"),
            (TokenType.BOOLEAN, "false"),
        ]

    def test_blank_node(self):
        assert kinds("_:b1") == [(TokenType.BLANK, "b1")]

    def test_operators(self):
        ops = [v for _, v in kinds("{ } ( ) . ; , ^^ && || ! != <= >= = * / + -")]
        assert ops == ["{", "}", "(", ")", ".", ";", ",", "^^",
                       "&&", "||", "!", "!=", "<=", ">=", "=", "*", "/", "+", "-"]

    def test_comments_skipped(self):
        assert kinds("?x # a comment\n?y") == [
            (TokenType.VAR, "x"), (TokenType.VAR, "y")]

    def test_line_column_tracking(self):
        tokens = tokenize("?a\n  ?b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unknown_identifier_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("SELEKT")

    def test_unexpected_character_rejected(self):
        with pytest.raises(SparqlSyntaxError) as err:
            tokenize("?x @@ ?y")
        assert "unexpected" in str(err.value)

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].type == TokenType.EOF
