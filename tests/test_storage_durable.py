"""Tests for the durable wrappers: DurableGraph and DurableLocationTable."""


from repro.metrics import DurabilityCounters
from repro.overlay import LocationTable
from repro.rdf import Graph, IRI, Literal, Triple
from repro.storage import DurableGraph, DurableLocationTable


def make_triples(n, tag="t"):
    return [
        Triple(IRI(f"http://x/{tag}/s{i}"), IRI("http://x/p"), Literal(f"v{i}"))
        for i in range(n)
    ]


class TestDurableGraph:
    def test_reopen_restores_exact_graph(self, tmp_path):
        g = DurableGraph(tmp_path, triples=make_triples(5))
        extra = Triple(IRI("http://x/extra"), IRI("http://x/p"), Literal("e"))
        g.add(extra)
        g.discard(make_triples(5)[0])
        g.close()

        reopened = DurableGraph(tmp_path)
        assert Graph(iter(reopened)) == Graph(make_triples(5)[1:] + [extra])
        assert reopened.recovery_info["records_replayed"] == 7  # 6 adds + 1 del

    def test_noop_mutations_not_logged(self, tmp_path):
        g = DurableGraph(tmp_path, triples=make_triples(2))
        g.add(make_triples(2)[0])          # already present
        g.discard(make_triples(3, "x")[0])  # absent
        g.close()
        assert DurableGraph(tmp_path).recovery_info["records_replayed"] == 2

    def test_checkpoint_compacts_log(self, tmp_path):
        g = DurableGraph(tmp_path, triples=make_triples(4))
        g.checkpoint(epoch=9)
        g.close()

        reopened = DurableGraph(tmp_path)
        assert len(reopened) == 4
        assert reopened.recovery_info["records_replayed"] == 0
        assert reopened.recovery_info["snapshot_lsn"] == 4
        assert reopened.recovered_epoch == 9

    def test_mutations_after_checkpoint_replay_on_top(self, tmp_path):
        g = DurableGraph(tmp_path, triples=make_triples(3))
        g.checkpoint()
        post = Triple(IRI("http://x/post"), IRI("http://x/p"), Literal("p"))
        g.add(post)
        g.close()

        reopened = DurableGraph(tmp_path)
        assert post in reopened and len(reopened) == 4
        assert reopened.recovery_info["records_replayed"] == 1

    def test_snapshot_every_auto_checkpoints(self, tmp_path):
        counters = DurabilityCounters()
        g = DurableGraph(tmp_path, snapshot_every=3, counters=counters)
        for t in make_triples(7):
            g.add(t)
        g.close()
        assert counters.snapshots_written == 2  # after records 3 and 6
        reopened = DurableGraph(tmp_path)
        assert len(reopened) == 7
        assert reopened.recovery_info["records_replayed"] == 1  # 7th add only

    def test_torn_tail_truncated_on_open(self, tmp_path):
        g = DurableGraph(tmp_path, triples=make_triples(3))
        g.close()
        wal = tmp_path / "graph.wal"
        wal.write_bytes(wal.read_bytes()[:-6])

        reopened = DurableGraph(tmp_path)
        assert len(reopened) == 2
        assert reopened.recovery_info["torn_truncated"] == 1

    def test_counters_track_appends_and_replays(self, tmp_path):
        counters = DurabilityCounters()
        g = DurableGraph(tmp_path, triples=make_triples(4), counters=counters)
        g.close()
        assert counters.wal_records_appended == 4
        DurableGraph(tmp_path, counters=counters)
        assert counters.wal_records_replayed == 4

    def test_fsync_counted(self, tmp_path):
        counters = DurabilityCounters()
        g = DurableGraph(tmp_path, fsync=True, counters=counters)
        g.add(make_triples(1)[0])
        g.close()
        assert counters.wal_fsyncs == 1

    def test_unicode_terms_survive(self, tmp_path):
        odd = Triple(
            IRI("http://x/sé"), IRI("http://x/p"),
            Literal("line\nbreak \"and\" \t☃"),
        )
        g = DurableGraph(tmp_path)
        g.add(odd)
        g.close()
        assert odd in DurableGraph(tmp_path)


class TestDurableLocationTable:
    def plain_copy(self, table):
        copy = LocationTable()
        for key, row in table.export_range():
            copy.import_row(key, row)
        return copy

    def test_reopen_restores_exact_table(self, tmp_path):
        t = DurableLocationTable(tmp_path)
        t.add(10, "D1", 3)
        t.add(10, "D2", 5)
        t.add(20, "node with spaces", 1)
        t.remove(10, "D1", 2)
        t.import_row(30, {"D3": 7, "D4": 2})
        t.remove_storage_node("D4")
        t.drop_row(20)
        t.close()

        reopened = DurableLocationTable(tmp_path)
        assert reopened.row_dict(10) == {"D1": 1, "D2": 5}
        assert reopened.row_dict(30) == {"D3": 7}
        assert 20 not in reopened
        assert reopened.cell_count() == 3

    def test_remove_whole_cell_round_trips(self, tmp_path):
        t = DurableLocationTable(tmp_path)
        t.add(1, "D1", 4)
        t.remove(1, "D1")  # count=None: drop the cell entirely
        t.close()
        assert 1 not in DurableLocationTable(tmp_path)

    def test_checkpoint_and_suffix_replay(self, tmp_path):
        t = DurableLocationTable(tmp_path)
        t.add(1, "D1", 2)
        t.checkpoint(epoch=4)
        t.add(2, "D2", 6)
        t.close()

        reopened = DurableLocationTable(tmp_path)
        assert reopened.row_dict(1) == {"D1": 2}
        assert reopened.row_dict(2) == {"D2": 6}
        assert reopened.recovery_info["records_replayed"] == 1
        assert reopened.recovered_epoch == 4

    def test_note_epoch_survives_reopen(self, tmp_path):
        t = DurableLocationTable(tmp_path)
        t.add(1, "D1", 1)
        t.note_epoch(17)
        t.close()
        assert DurableLocationTable(tmp_path).recovered_epoch == 17

    def test_empty_row_import_not_logged(self, tmp_path):
        t = DurableLocationTable(tmp_path)
        t.import_row(5, {})
        t.close()
        assert DurableLocationTable(tmp_path).recovery_info["records_replayed"] == 0

    def test_snapshot_every_auto_checkpoints(self, tmp_path):
        counters = DurabilityCounters()
        t = DurableLocationTable(tmp_path, snapshot_every=2, counters=counters)
        for i in range(5):
            t.add(i, "D1", 1)
        t.close()
        assert counters.snapshots_written == 2
        reopened = DurableLocationTable(tmp_path)
        assert reopened.cell_count() == 5
