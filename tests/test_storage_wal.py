"""Unit tests for the durability primitives: codec, WAL, snapshots."""

import pytest

from repro.storage import (
    CorruptRecord,
    PayloadCursor,
    Record,
    SnapshotStore,
    WriteAheadLog,
    decode_record,
    encode_record,
    encode_str,
)


class TestCodec:
    def test_round_trip(self):
        line = encode_record(7, "add", "<http://x/s> <http://x/p> \"v\" .")
        assert line.endswith("\n")
        record = decode_record(line.rstrip("\n"))
        assert record == Record(7, "add", "<http://x/s> <http://x/p> \"v\" .")

    def test_empty_payload(self):
        record = decode_record(encode_record(1, "reset").rstrip("\n"))
        assert record == Record(1, "reset", "")

    def test_newline_in_payload_rejected(self):
        with pytest.raises(ValueError, match="newline"):
            encode_record(1, "add", "two\nlines")

    def test_crc_mismatch_detected(self):
        line = encode_record(3, "add", "payload").rstrip("\n")
        tampered = line[:-1] + ("X" if line[-1] != "X" else "Y")
        with pytest.raises(CorruptRecord, match="CRC"):
            decode_record(tampered)

    def test_malformed_line_detected(self):
        with pytest.raises(CorruptRecord, match="malformed"):
            decode_record("not a record at all")

    def test_encode_str_escapes_spaces_and_quotes(self):
        encoded = encode_str('a node "with" spaces')
        cursor = PayloadCursor(encoded)
        assert cursor.string() == 'a node "with" spaces'
        assert cursor.at_end()

    def test_cursor_fields(self):
        payload = f"42 {encode_str('D1')} -7 - 9"
        cursor = PayloadCursor(payload)
        assert cursor.integer() == 42
        assert cursor.string() == "D1"
        assert cursor.integer() == -7
        assert cursor.optional_integer() is None
        assert cursor.optional_integer() == 9
        assert cursor.at_end()

    def test_cursor_type_errors(self):
        with pytest.raises(CorruptRecord, match="integer"):
            PayloadCursor("nope").integer()
        with pytest.raises(CorruptRecord, match="literal"):
            PayloadCursor("<http://x/iri>").string()


class TestWriteAheadLog:
    def test_append_then_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "t.wal")
        assert wal.append("add", "one") == 1
        assert wal.append("del", "two") == 2
        wal.close()

        reopened = WriteAheadLog(tmp_path / "t.wal")
        records = list(reopened.replay())
        assert [(r.lsn, r.rtype, r.payload) for r in records] == [
            (1, "add", "one"), (2, "del", "two"),
        ]
        assert reopened.next_lsn == 3
        assert reopened.torn_truncated == 0

    def test_missing_file_is_empty_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "absent.wal")
        assert list(wal.replay()) == []
        assert wal.next_lsn == 1

    def test_torn_partial_line_truncated(self, tmp_path):
        path = tmp_path / "t.wal"
        wal = WriteAheadLog(path)
        wal.append("add", "one")
        wal.append("add", "two")
        wal.close()
        raw = path.read_bytes()
        path.write_bytes(raw[:-4])  # tear the last record mid-write

        reopened = WriteAheadLog(path)
        records = list(reopened.replay())
        assert [r.payload for r in records] == ["one"]
        assert reopened.torn_truncated == 1
        # The file is append-clean again: a fresh append replays fine.
        reopened.append("add", "three")
        reopened.close()
        final = list(WriteAheadLog(path).replay())
        assert [r.payload for r in final] == ["one", "three"]

    def test_lost_newline_on_intact_record_is_repaired(self, tmp_path):
        """An acked record whose terminator was lost must not be dropped."""
        path = tmp_path / "t.wal"
        wal = WriteAheadLog(path)
        wal.append("add", "one")
        wal.close()
        path.write_bytes(path.read_bytes().rstrip(b"\n"))

        reopened = WriteAheadLog(path)
        assert [r.payload for r in reopened.replay()] == ["one"]
        assert reopened.torn_truncated == 0
        assert path.read_bytes().endswith(b"\n")

    def test_corruption_mid_file_truncates_suffix(self, tmp_path):
        path = tmp_path / "t.wal"
        wal = WriteAheadLog(path)
        for i in range(4):
            wal.append("add", f"r{i}")
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b"garbage line\n"
        path.write_bytes(b"".join(lines))

        reopened = WriteAheadLog(path)
        records = list(reopened.replay())
        # Everything from the corrupt record on is untrusted and dropped.
        assert [r.payload for r in records] == ["r0"]
        assert reopened.torn_truncated == 3
        assert path.read_bytes().count(b"\n") == 1

    def test_reset_keeps_lsns_monotonic(self, tmp_path):
        path = tmp_path / "t.wal"
        wal = WriteAheadLog(path)
        wal.append("add", "one")
        wal.append("add", "two")
        wal.reset()
        assert wal.record_count == 0
        assert wal.append("add", "three") == 3
        wal.close()
        records = list(WriteAheadLog(path).replay())
        assert [(r.lsn, r.payload) for r in records] == [(3, "three")]


class TestSnapshotStore:
    def test_write_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path, "graph")
        store.write(12, "line one\nline two\n", epoch=5)
        snap = store.load_latest()
        assert snap is not None
        assert (snap.lsn, snap.epoch, snap.body) == (12, 5, "line one\nline two\n")

    def test_epoch_none_round_trips(self, tmp_path):
        store = SnapshotStore(tmp_path, "graph")
        store.write(1, "body\n")
        assert store.load_latest().epoch is None

    def test_latest_wins(self, tmp_path):
        store = SnapshotStore(tmp_path, "graph")
        store.write(1, "old\n")
        store.write(9, "new\n")
        assert store.load_latest().body == "new\n"

    def test_damaged_snapshot_falls_back_to_older(self, tmp_path):
        store = SnapshotStore(tmp_path, "graph")
        store.write(1, "good\n")
        newest = store.write(2, "bad\n")
        newest.write_text(
            newest.read_text(encoding="utf-8").replace("bad", "mut"),
            encoding="utf-8",
        )  # body no longer matches the header CRC
        snap = store.load_latest()
        assert snap.lsn == 1 and snap.body == "good\n"

    def test_compact_keeps_newest(self, tmp_path):
        store = SnapshotStore(tmp_path, "graph")
        for lsn in (1, 2, 3):
            store.write(lsn, f"v{lsn}\n")
        assert store.compact(keep=1) == 2
        assert store.load_latest().lsn == 3
        assert len(list(tmp_path.glob("graph-*.snap"))) == 1

    def test_components_are_namespaced(self, tmp_path):
        graphs = SnapshotStore(tmp_path, "graph")
        tables = SnapshotStore(tmp_path, "table")
        graphs.write(1, "graph body\n")
        tables.write(2, "table body\n")
        assert graphs.load_latest().body == "graph body\n"
        assert tables.load_latest().body == "table body\n"

    def test_missing_directory_is_empty(self, tmp_path):
        store = SnapshotStore(tmp_path / "absent", "graph")
        assert store.load_latest() is None
