"""Interned-term edge cases (PR 7 performance layer).

The join kernels and the hot paths in :mod:`repro.net.sizes` and
:mod:`repro.overlay.keys` rely on terms being *interned*: constructing
the same term twice yields the identical object, so equality is a
pointer check and per-term caches (hash, N3 text, wire size) are shared.
These tests pin down the edges where interning could silently go wrong:
literals that differ only in language tag or datatype, blank-node
identity across parse round-trips, and the pickle / WAL-codec paths that
rebuild terms outside the normal constructors.
"""

import copy
import pickle

import pytest

from repro.rdf import parse_ntriples, serialize_ntriples
from repro.rdf.terms import IRI, XSD_STRING, BlankNode, Literal, Variable
from repro.rdf.triple import Triple
from repro.sparql.solutions import SolutionMapping
from repro.storage.codec import PayloadCursor


class TestIdentity:
    def test_same_args_same_object(self):
        assert IRI("http://example.org/a") is IRI("http://example.org/a")
        assert Literal("x") is Literal("x")
        assert Literal("x", language="en") is Literal("x", language="en")
        assert BlankNode("b0") is BlankNode("b0")
        assert Variable("v") is Variable("v")

    def test_equality_is_identity_consistent(self):
        a = IRI("http://example.org/a")
        b = IRI("http://example.org/b")
        assert a == a and hash(a) == hash(IRI("http://example.org/a"))
        assert a != b

    def test_validation_still_raised(self):
        with pytest.raises(ValueError):
            IRI("")
        with pytest.raises(ValueError):
            IRI("http://bad space")
        with pytest.raises(ValueError):
            Literal("x", language="en", datatype=IRI(XSD_STRING))
        with pytest.raises(ValueError):
            Literal("x", language="")
        with pytest.raises(ValueError):
            Variable("?name")

    def test_terms_are_immutable(self):
        term = IRI("http://example.org/a")
        with pytest.raises(AttributeError):
            term.value = "http://example.org/b"
        with pytest.raises(AttributeError):
            del term.value

    def test_copy_returns_the_same_object(self):
        for term in (IRI("http://example.org/a"), Literal("x", language="en"),
                     BlankNode("b0"), Variable("v")):
            assert copy.copy(term) is term
            assert copy.deepcopy(term) is term


class TestLiteralDistinctions:
    """Literals differing only in tag/datatype must stay distinct."""

    def test_language_tag_differs(self):
        plain = Literal("chat")
        en = Literal("chat", language="en")
        fr = Literal("chat", language="fr")
        assert plain is not en and en is not fr
        assert plain != en and en != fr
        assert len({plain, en, fr}) == 3

    def test_datatype_differs(self):
        plain = Literal("1")
        as_int = Literal("1", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer"))
        as_str = Literal("1", datatype=IRI(XSD_STRING))
        assert plain is not as_int and as_int is not as_str
        assert len({plain, as_int, as_str}) == 3

    def test_language_vs_datatype_on_same_lexical(self):
        tagged = Literal("x", language="en")
        typed = Literal("x", datatype=IRI(XSD_STRING))
        assert tagged is not typed and tagged != typed

    def test_case_sensitive_language_tags_stay_distinct(self):
        # We do not normalize tags; "en" and "EN" are different keys.
        assert Literal("x", language="en") is not Literal("x", language="EN")


class TestParseRoundTrips:
    DOC = (
        '_:alice <http://xmlns.com/foaf/0.1/knows> _:bob .\n'
        '_:bob <http://xmlns.com/foaf/0.1/name> "Bob"@en .\n'
        '_:alice <http://xmlns.com/foaf/0.1/age> '
        '"42"^^<http://www.w3.org/2001/XMLSchema#integer> .\n'
    )

    def test_blank_nodes_identical_across_parses(self):
        first = list(parse_ntriples(self.DOC))
        second = list(parse_ntriples(self.DOC))
        for t1, t2 in zip(first, second):
            assert t1.s is t2.s and t1.p is t2.p and t1.o is t2.o

    def test_serialize_then_reparse_reinterns(self):
        triples = list(parse_ntriples(self.DOC))
        again = list(parse_ntriples(serialize_ntriples(triples)))
        assert sorted(t.n3() for t in triples) == sorted(t.n3() for t in again)
        terms = {term for t in triples for term in t}
        terms_again = {term for t in again for term in t}
        for term in terms_again:
            # Set equality via identity: every reparsed term IS an
            # already-interned object, never a fresh equal twin.
            assert any(term is known for known in terms)


class TestPickleRoundTrips:
    def test_terms_reintern_on_unpickle(self):
        for term in (IRI("http://example.org/a"),
                     Literal("x", language="en"),
                     Literal("1", datatype=IRI(XSD_STRING)),
                     BlankNode("b0"), Variable("v")):
            assert pickle.loads(pickle.dumps(term)) is term

    def test_triple_round_trip_shares_terms(self):
        triple = Triple(IRI("http://example.org/s"),
                        IRI("http://example.org/p"), Literal("o"))
        clone = pickle.loads(pickle.dumps(triple))
        assert clone == triple
        assert clone.s is triple.s and clone.p is triple.p and clone.o is triple.o

    def test_solution_mapping_round_trip(self):
        mu = SolutionMapping({Variable("x"): IRI("http://example.org/a"),
                              Variable("y"): Literal("42", language="de")})
        clone = pickle.loads(pickle.dumps(mu))
        assert clone == mu and hash(clone) == hash(mu)
        for (v1, t1), (v2, t2) in zip(mu.items(), clone.items()):
            assert v1 is v2 and t1 is t2


class TestWalCodecRoundTrips:
    """The WAL writes terms as N-Triples text; reading them back must
    land on the interned instances, not fresh equal copies."""

    @pytest.mark.parametrize("term", [
        IRI("http://example.org/a"),
        Literal("plain"),
        Literal("tagged", language="en"),
        Literal("7", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer")),
        Literal('tricky "quotes" and \\ slash \n newline'),
        BlankNode("b42"),
    ])
    def test_term_field_round_trip(self, term):
        decoded = PayloadCursor(term.n3()).term()
        assert decoded is term

    def test_triple_payload_round_trip(self):
        triple = Triple(BlankNode("s"), IRI("http://example.org/p"),
                        Literal("v", language="en"))
        cursor = PayloadCursor(f"{triple.s.n3()} {triple.p.n3()} {triple.o.n3()}")
        assert cursor.term() is triple.s
        assert cursor.term() is triple.p
        assert cursor.term() is triple.o
        assert cursor.at_end()
