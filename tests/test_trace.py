"""Tracing subsystem tests: phase accounting, determinism, rendering,
JSONL export, zero-overhead-off, and the trace CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.query import DistributedExecutor
from repro.rdf import serialize_ntriples
from repro.trace import (
    NULL_TRACER,
    PHASES,
    PHASE_FINALIZE,
    PHASE_JOIN,
    PHASE_LOOKUP,
    PHASE_SHIP,
    Tracer,
    phase_for_method,
    render_phases,
    render_sequence,
    render_spans,
    to_jsonl,
)
from repro.workloads import paper_example_partition

from helpers import build_system

FIG6 = """SELECT ?x ?y ?z WHERE {
    ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y . }"""

FIG5 = "SELECT ?x WHERE { ?x foaf:knows ns:me . }"


def traced_run(query=FIG6, **options):
    system = build_system()
    tracer = Tracer()
    executor = DistributedExecutor(system, tracer=tracer, **options)
    result, report = executor.execute(query, initiator="D1")
    return system, tracer, result, report


class TestPhaseAccounting:
    def test_phase_bytes_partition_bytes_total(self):
        """Fig. 6 conjunctive query: per-phase byte totals sum exactly to
        the report's bytes_total (the ISSUE acceptance criterion)."""
        _, _, _, report = traced_run()
        assert report.bytes_total > 0
        assert sum(p.bytes for p in report.phases.values()) == report.bytes_total
        assert sum(p.messages for p in report.phases.values()) == report.messages

    def test_all_four_phases_present(self):
        _, _, _, report = traced_run()
        assert set(report.phases) == set(PHASES)
        # A conjunctive query exercises every stage of the workflow.
        assert report.phase_bytes(PHASE_LOOKUP) > 0
        assert report.phase_bytes(PHASE_SHIP) > 0
        assert report.phase_bytes(PHASE_JOIN) > 0
        assert report.phase_bytes(PHASE_FINALIZE) > 0

    def test_reused_tracer_windows_per_query(self):
        """Running two queries through one tracer: the second report's
        phases cover only the second query."""
        system = build_system()
        tracer = Tracer()
        executor = DistributedExecutor(system, tracer=tracer)
        _, first = executor.execute(FIG5, initiator="D1")
        _, second = executor.execute(FIG5, initiator="D1")
        assert sum(p.bytes for p in second.phases.values()) == second.bytes_total
        assert tracer.bytes_total == first.bytes_total + second.bytes_total

    def test_phase_for_method_strips_reply_suffix(self):
        assert phase_for_method("find_successor") == PHASE_LOOKUP
        assert phase_for_method("find_successor.reply") == PHASE_LOOKUP
        assert phase_for_method("combine.error") == PHASE_JOIN
        assert phase_for_method("fetch") == PHASE_FINALIZE
        # Unknown methods land in the data-movement catch-all.
        assert phase_for_method("mystery_method") == PHASE_SHIP

    def test_site_bytes_sum_to_total(self):
        _, tracer, _, report = traced_run()
        assert sum(tracer.site_bytes.values()) == report.bytes_total


class TestDeterminism:
    def test_rendered_diagram_byte_identical(self):
        """Two fresh, identically-built systems produce byte-identical
        sequence diagrams and JSONL dumps."""
        _, t1, _, _ = traced_run()
        _, t2, _, _ = traced_run()
        assert render_sequence(t1) == render_sequence(t2)
        assert to_jsonl(t1) == to_jsonl(t2)

    def test_tracing_off_changes_nothing(self):
        """With tracing disabled the simulated time and transmission
        totals are identical to the traced run (zero observer effect)."""
        system_plain = build_system()
        _, plain = DistributedExecutor(system_plain).execute(FIG6, initiator="D1")
        _, _, _, traced = traced_run()
        assert plain.bytes_total == traced.bytes_total
        assert plain.messages == traced.messages
        assert plain.response_time == traced.response_time
        assert plain.phases == {}
        assert plain.trace is None

    def test_untraced_simulator_keeps_null_tracer(self):
        system = build_system()
        assert system.sim.tracer is NULL_TRACER
        DistributedExecutor(system).execute(FIG5, initiator="D1")
        assert system.sim.tracer is NULL_TRACER

    def test_tracer_detached_after_query(self):
        system, _, _, _ = traced_run()
        assert system.sim.tracer is NULL_TRACER


class TestSpans:
    def test_operator_spans_recorded_and_closed(self):
        _, tracer, _, _ = traced_run()
        names = {start.name for start, _ in tracer.spans()}
        assert {"query", "conjunction", "lookup",
                "combine", "finalize"} <= names
        for start, end in tracer.spans():
            assert end is not None, f"span {start.name} never closed"
            assert end.time >= start.time

    def test_primitive_span_on_single_pattern(self):
        _, tracer, _, _ = traced_run(query=FIG5)
        names = {start.name for start, _ in tracer.spans()}
        assert "primitive" in names

    def test_span_closed_on_failure(self):
        system = build_system()
        tracer = Tracer()
        executor = DistributedExecutor(system, tracer=tracer)
        with pytest.raises(Exception):
            executor.execute("SELECT ?x FROM <http://g> WHERE { ?x ?p ?o . }",
                             initiator="D1")
        for start, end in tracer.spans():
            assert end is not None

    def test_null_tracer_span_is_noop(self):
        span = NULL_TRACER.span("anything", phase="join")
        with span:
            pass
        span.close()  # idempotent, records nothing
        assert NULL_TRACER.phase_breakdown() == {}


class TestExportAndRender:
    def test_jsonl_lines_parse_and_are_sorted(self):
        _, tracer, _, _ = traced_run()
        lines = to_jsonl(tracer).splitlines()
        assert len(lines) == len(tracer.events)
        for line in lines:
            record = json.loads(line)
            assert list(record) == sorted(record)
            assert "seq" in record and "kind" in record

    def test_write_jsonl_creates_parents(self, tmp_path):
        from repro.trace import write_jsonl

        _, tracer, _, _ = traced_run()
        path = write_jsonl(tracer, tmp_path / "deep" / "trace.jsonl")
        assert path.exists()
        assert len(path.read_text().splitlines()) == len(tracer.events)

    def test_sequence_diagram_shows_participants_and_arrows(self):
        _, tracer, _, _ = traced_run()
        text = render_sequence(tracer)
        assert "D1" in text.splitlines()[0]
        assert "find_successor" in text
        # Phase tags appear on arrows wide enough to carry the label.
        assert "[ship]" in text and "[finalize]" in text

    def test_sequence_diagram_max_events(self):
        _, tracer, _, _ = traced_run()
        text = render_sequence(tracer, max_events=3)
        assert "more messages" in text

    def test_empty_trace_renders(self):
        assert render_sequence(Tracer()) == "(no messages traced)\n"

    def test_phase_table_has_total_row(self):
        _, _, _, report = traced_run()
        table = render_phases(report.phases)
        assert "total" in table
        for phase in PHASES:
            assert phase in table

    def test_render_spans_lists_query_span(self):
        _, tracer, _, _ = traced_run()
        assert "query" in render_spans(tracer)


class TestTraceCli:
    @pytest.fixture
    def data_files(self, tmp_path):
        paths = []
        for storage_id, triples in paper_example_partition().items():
            path = tmp_path / f"{storage_id}.nt"
            path.write_text(serialize_ntriples(triples), encoding="utf-8")
            paths.append(str(path))
        return paths

    def test_trace_subcommand(self, data_files, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        code = main([
            "trace",
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
            "PREFIX ns: <http://example.org/ns#> " + FIG6,
            *[arg for f in data_files for arg in ("--data", f)],
            "--jsonl", str(out_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-phase cost" in out
        assert "time(ms)" in out
        assert out_path.exists()

    def test_trace_subcommand_deterministic(self, data_files, capsys):
        argv = ["trace", "PREFIX foaf: <http://xmlns.com/foaf/0.1/> " + FIG5,
                *[arg for f in data_files for arg in ("--data", f)]]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second

    def test_trace_requires_query(self, data_files):
        with pytest.raises(SystemExit, match="query"):
            main(["trace", "--data", data_files[0]])

    def test_trace_rejects_double_query(self, data_files, tmp_path):
        qfile = tmp_path / "q.rq"
        qfile.write_text(FIG5)
        with pytest.raises(SystemExit, match="not both"):
            main(["trace", FIG5, "--query-file", str(qfile),
                  "--data", data_files[0]])
