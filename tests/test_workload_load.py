"""Load-harness tests: deterministic schedules, both arrival processes,
admission control, and the aggregate report."""

import pytest

from repro.net import ContentionModel
from repro.workloads import LoadConfig, run_workload
from repro.workloads.load import build_jobs

from helpers import build_system
from test_lifecycle_leaks import CLEAN, live_heap, peer_state


class TestBuildJobs:
    def test_same_seed_same_schedule(self):
        config = LoadConfig(mode="open", num_queries=20, seed=42)
        a, b = build_jobs(config), build_jobs(config)
        assert [(j.label, j.initiator, j.arrival) for j in a] == \
               [(j.label, j.initiator, j.arrival) for j in b]

    def test_different_seed_different_schedule(self):
        a = build_jobs(LoadConfig(mode="open", num_queries=20, seed=1))
        b = build_jobs(LoadConfig(mode="open", num_queries=20, seed=2))
        assert [(j.label, j.arrival) for j in a] != \
               [(j.label, j.arrival) for j in b]

    def test_open_arrivals_increase(self):
        jobs = build_jobs(LoadConfig(mode="open", num_queries=10, seed=0))
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0.0

    def test_closed_mode_has_no_arrival_times(self):
        jobs = build_jobs(LoadConfig(mode="closed", num_queries=5))
        assert all(j.arrival == 0.0 for j in jobs)

    def test_initiators_round_robin(self):
        jobs = build_jobs(LoadConfig(initiators=("a", "b"), num_queries=4))
        assert [j.initiator for j in jobs] == ["a", "b", "a", "b"]

    def test_validation(self):
        with pytest.raises(ValueError):
            build_jobs(LoadConfig(queries=[]))
        with pytest.raises(ValueError):
            build_jobs(LoadConfig(mode="sideways"))


class TestClosedLoop:
    def test_all_jobs_complete(self):
        system = build_system()
        report = run_workload(
            system, LoadConfig(mode="closed", concurrency=4, num_queries=12))
        assert report.completed == 12
        assert report.failed == report.shed == 0
        assert report.peak_in_flight == 4
        assert report.throughput > 0
        assert report.messages > 0 and report.bytes_total > 0
        assert peer_state(system) == CLEAN
        assert live_heap(system.sim) == []

    def test_latency_percentiles_populated(self):
        report = run_workload(
            build_system(),
            LoadConfig(mode="closed", concurrency=4, num_queries=12))
        lat = report.latency
        assert lat is not None and lat.count == 12
        assert 0 < lat.p50 <= lat.p95 <= lat.p99 <= lat.maximum

    def test_deterministic_end_to_end(self):
        config = LoadConfig(mode="closed", concurrency=8, num_queries=16, seed=5)
        reports = []
        for _ in range(2):
            system = build_system()
            system.network.contention = ContentionModel()
            reports.append(run_workload(system, config))
        a, b = reports
        assert a.duration == b.duration
        assert a.messages == b.messages and a.bytes_total == b.bytes_total
        assert a.latency == b.latency
        assert a.contention == b.contention
        assert [j.finished for j in a.jobs] == [j.finished for j in b.jobs]

    def test_contention_slows_the_contended_run(self):
        config = LoadConfig(mode="closed", concurrency=8, num_queries=16, seed=5)
        free = run_workload(build_system(), config)
        contended_system = build_system()
        contended_system.network.contention = ContentionModel()
        contended = run_workload(contended_system, config)
        # Same work either way...
        assert contended.messages == free.messages
        assert contended.bytes_total == free.bytes_total
        # ...but queueing makes the contended run measurably slower.
        assert contended.contention["total_wait"] > 0
        assert contended.duration > free.duration
        assert contended.latency.p95 >= free.latency.p95


class TestOpenLoop:
    def test_poisson_arrivals_complete(self):
        system = build_system()
        report = run_workload(
            system,
            LoadConfig(mode="open", arrival_rate=30.0, num_queries=10, seed=2))
        assert report.completed == 10
        assert peer_state(system) == CLEAN

    def test_admission_control_sheds_overload(self):
        system = build_system()
        report = run_workload(
            system,
            LoadConfig(mode="open", arrival_rate=500.0, num_queries=40,
                       seed=0, max_in_flight=2, queue_limit=3))
        assert report.peak_in_flight <= 2
        assert report.max_admission_queue <= 3
        assert report.shed > 0
        assert report.completed + report.failed + report.shed == 40
        shed_jobs = [j for j in report.jobs if j.shed]
        assert len(shed_jobs) == report.shed
        assert all(not j.ok and j.latency is None for j in shed_jobs)
        # Shedding never leaks: every admitted job still finished clean.
        assert peer_state(system) == CLEAN
        assert live_heap(system.sim) == []

    def test_unbounded_queue_defers_without_shedding(self):
        report = run_workload(
            build_system(),
            LoadConfig(mode="open", arrival_rate=500.0, num_queries=20,
                       seed=0, max_in_flight=2))
        assert report.shed == 0
        assert report.deferred > 0
        assert report.completed == 20


class TestWorkloadReport:
    def test_as_dict_round_trips_to_json(self):
        import json

        report = run_workload(
            build_system(), LoadConfig(mode="closed", concurrency=2,
                                       num_queries=6))
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["jobs"] == 6
        assert payload["completed"] == 6
        assert payload["latency"]["p95"] >= payload["latency"]["p50"]

    def test_per_label_counts(self):
        report = run_workload(
            build_system(), LoadConfig(mode="closed", concurrency=2,
                                       num_queries=8, seed=3))
        counts = report.per_label()
        assert sum(counts.values()) == 8


class TestBenchLoadCli:
    def test_bench_load_subcommand(self, tmp_path, capsys):
        from repro.cli import main
        from repro.rdf import serialize_ntriples
        from repro.workloads import paper_example_partition

        args = []
        for storage_id, triples in paper_example_partition().items():
            path = tmp_path / f"{storage_id}.nt"
            path.write_text(serialize_ntriples(triples), encoding="utf-8")
            args += ["--data", str(path)]
        code = main(["bench-load", *args, "--mode", "closed",
                     "--concurrency", "4", "--num-queries", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "completed=8" in out
        assert "throughput=" in out
        assert "p95=" in out
        assert "contention:" in out
