"""Workload generator tests: determinism, shape, partition semantics."""

import random
from collections import Counter

import pytest

from repro.rdf import FOAF, NS, Graph, PatternShape
from repro.sparql import evaluate_query, parse_query
from repro.rdf.namespaces import COMMON_PREFIXES
from repro.workloads import (
    FoafConfig,
    QueryWorkload,
    ZipfSampler,
    generate_foaf_triples,
    paper_example_dataset,
    partition_triples,
)


class TestZipf:
    def test_deterministic_under_seed(self):
        a = ZipfSampler(10, 1.0, random.Random(1))
        b = ZipfSampler(10, 1.0, random.Random(1))
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_zero_exponent_roughly_uniform(self):
        sampler = ZipfSampler(4, 0.0, random.Random(2))
        counts = Counter(sampler.sample() for _ in range(4000))
        assert all(800 < counts[i] < 1200 for i in range(4))

    def test_high_exponent_skews_to_head(self):
        sampler = ZipfSampler(100, 1.5, random.Random(3))
        counts = Counter(sampler.sample() for _ in range(5000))
        assert counts[0] > counts.get(50, 0) * 5

    def test_bounds(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            ZipfSampler(5, -1.0, random.Random(0))

    def test_choice_requires_matching_length(self):
        sampler = ZipfSampler(3, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            sampler.choice(["a", "b"])


class TestFoafGenerator:
    def test_deterministic(self):
        cfg = FoafConfig(num_people=30, seed=9)
        assert generate_foaf_triples(cfg) == generate_foaf_triples(cfg)

    def test_vocabulary_is_papers(self):
        triples = generate_foaf_triples(FoafConfig(num_people=50, seed=1))
        predicates = {t.p for t in triples}
        assert predicates <= {FOAF.name, FOAF.knows, FOAF.mbox, FOAF.nick,
                              NS.knowsNothingAbout}
        assert FOAF.knows in predicates

    def test_every_person_has_a_name(self):
        cfg = FoafConfig(num_people=40, seed=2)
        triples = generate_foaf_triples(cfg)
        named = {t.s for t in triples if t.p == FOAF.name}
        assert len(named) == cfg.num_people

    def test_smith_fraction_controls_filter_selectivity(self):
        lo = generate_foaf_triples(FoafConfig(num_people=200, smith_fraction=0.1, seed=4))
        hi = generate_foaf_triples(FoafConfig(num_people=200, smith_fraction=0.9, seed=4))

        def smiths(triples):
            return sum(
                1 for t in triples
                if t.p == FOAF.name and "Smith" in t.o.lexical
            )

        assert smiths(hi) > smiths(lo) * 3

    def test_no_self_knows(self):
        triples = generate_foaf_triples(FoafConfig(num_people=60, seed=5))
        assert all(t.s != t.o for t in triples if t.p == FOAF.knows)


class TestPartition:
    def test_zero_overlap_is_clean_partition(self):
        triples = paper_example_dataset()
        parts = partition_triples(triples, 3, overlap=0.0, seed=1)
        assert sum(len(p) for p in parts) == len(triples)

    def test_overlap_duplicates_across_nodes(self):
        triples = paper_example_dataset()
        parts = partition_triples(triples, 3, overlap=1.0, seed=1)
        assert sum(len(p) for p in parts) == 2 * len(triples)
        # duplicates are on *different* nodes
        for i, part in enumerate(parts):
            assert len(part) == len(set(part))

    def test_union_preserved(self):
        triples = generate_foaf_triples(FoafConfig(num_people=20, seed=3))
        parts = partition_triples(triples, 4, overlap=0.5, seed=2)
        union = set()
        for p in parts:
            union.update(p)
        assert union == set(triples)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            partition_triples([], 0)
        with pytest.raises(ValueError):
            partition_triples([], 2, overlap=1.5)


class TestQueryWorkload:
    @pytest.mark.parametrize("shape", PatternShape)
    def test_primitive_queries_have_answers(self, shape):
        triples = paper_example_dataset()
        wl = QueryWorkload(triples, seed=6)
        graph = Graph(triples)
        text = wl.primitive(shape)
        result = evaluate_query(parse_query(text, COMMON_PREFIXES), graph)
        assert len(result.rows) > 0

    def test_compound_generators_parse(self):
        wl = QueryWorkload(paper_example_dataset(), seed=7)
        for text in (wl.conjunction(2), wl.conjunction(3), wl.optional(),
                     wl.union(), wl.filtered()):
            parse_query(text, COMMON_PREFIXES)  # no syntax error

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            QueryWorkload([], seed=0)
